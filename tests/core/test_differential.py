"""Randomized differential testing: every algorithm against the oracle.

The strongest correctness statement the repository makes is that the four
S-PPJ algorithms (and the top-k family) are *exact*: for any dataset and
any thresholds they return precisely the pairs the exhaustive definition
yields.  This harness generates a matrix of seeded random datasets —
varying user counts, set sizes, token skew, spatial clustering and
degenerate extremes — and asserts byte-identical results across all
algorithms on several threshold grids.
"""

from __future__ import annotations

import pytest

from repro import STDataset, stps_join, topk_stps_join
from repro.core.query import STPSJoinQuery, pairs_to_dict
from tests.helpers import DifferentialConfig, build_differential_dataset

JOIN_ALGOS = ["s-ppj-c", "s-ppj-b", "s-ppj-f", "s-ppj-d"]
TOPK_ALGOS = ["topk-s-ppj-f", "topk-s-ppj-s", "topk-s-ppj-p", "topk-s-ppj-d"]

#: ~20 dataset shapes spanning the axes the algorithms prune along.
CONFIGS = [
    # Uniform baselines at several scales.
    DifferentialConfig(seed=1, n_users=4, max_objects=3),
    DifferentialConfig(seed=2, n_users=8),
    DifferentialConfig(seed=3, n_users=12, max_objects=10),
    DifferentialConfig(seed=4, n_users=15, max_objects=4, vocab=12),
    # Token skew: long inverted lists on head tokens.
    DifferentialConfig(seed=5, n_users=10, token_skew=0.7),
    DifferentialConfig(seed=6, n_users=12, token_skew=1.5, vocab=50),
    DifferentialConfig(seed=7, n_users=8, token_skew=3.0, vocab=8),
    # Spatial clustering: dense cells/leaves, many same-cell candidates.
    DifferentialConfig(seed=8, n_users=10, cluster_fraction=0.9, spread=0.01),
    DifferentialConfig(seed=9, n_users=12, cluster_fraction=0.6, n_clusters=2),
    DifferentialConfig(seed=10, n_users=9, cluster_fraction=1.0, spread=0.005),
    # Clustered AND skewed — the adversarial combination.
    DifferentialConfig(
        seed=11, n_users=10, cluster_fraction=0.8, token_skew=1.0, spread=0.02
    ),
    DifferentialConfig(
        seed=12, n_users=14, cluster_fraction=0.7, token_skew=0.5, vocab=15
    ),
    # Set-size spread: Lemma 1's beta differs wildly across pairs.
    DifferentialConfig(seed=13, n_users=8, min_objects=1, max_objects=20),
    DifferentialConfig(seed=14, n_users=10, min_objects=5, max_objects=6),
    # Tiny vocabulary: almost everything is a candidate.
    DifferentialConfig(seed=15, n_users=10, vocab=3),
    # Huge vocabulary: almost nothing matches.
    DifferentialConfig(seed=16, n_users=10, vocab=500),
    # Singleton object sets.
    DifferentialConfig(seed=17, n_users=12, min_objects=1, max_objects=1),
    # Objects with empty documents sprinkled in.
    DifferentialConfig(seed=18, n_users=10, empty_doc_fraction=0.3),
    DifferentialConfig(seed=19, n_users=8, empty_doc_fraction=0.8, vocab=5),
    # Compressed extent: everything in one grid cell neighbourhood.
    DifferentialConfig(seed=20, n_users=8, extent=0.001, cluster_fraction=0.5),
]

#: (eps_loc, eps_doc, eps_user) grids — loose, mid, and tight.
EPS_GRIDS = [
    (0.08, 0.2, 0.1),
    (0.05, 0.4, 0.4),
    (0.02, 0.6, 0.8),
]


def _join(dataset, eps, algorithm, **kwargs):
    eps_loc, eps_doc, eps_user = eps
    return stps_join(
        dataset, eps_loc, eps_doc, eps_user, algorithm=algorithm, **kwargs
    )


class TestJoinDifferential:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: f"seed{c.seed}")
    def test_all_algorithms_match_oracle(self, config):
        dataset = build_differential_dataset(config)
        for eps in EPS_GRIDS:
            expected = _join(dataset, eps, "naive")
            expected_dict = pairs_to_dict(expected)
            for algorithm in JOIN_ALGOS:
                got = _join(dataset, eps, algorithm)
                # Byte-identical: same pairs, same exact float scores,
                # same canonical order.
                assert got == expected, (
                    f"{algorithm} diverged from oracle on seed={config.seed} "
                    f"eps={eps}: {pairs_to_dict(got)} != {expected_dict}"
                )

    @pytest.mark.parametrize("refine", ["ppj-b", "ppj-c"])
    def test_sppj_f_refine_variants(self, refine):
        dataset = build_differential_dataset(CONFIGS[10])
        eps = EPS_GRIDS[1]
        expected = _join(dataset, eps, "naive")
        assert _join(dataset, eps, "s-ppj-f", refine=refine) == expected

    @pytest.mark.parametrize("partitioner", ["rtree", "quadtree"])
    def test_sppj_d_partitioner_variants(self, partitioner):
        dataset = build_differential_dataset(CONFIGS[8])
        eps = EPS_GRIDS[0]
        expected = _join(dataset, eps, "naive")
        assert _join(dataset, eps, "s-ppj-d", partitioner=partitioner) == expected


class TestTopKDifferential:
    @pytest.mark.parametrize(
        "config", [CONFIGS[1], CONFIGS[5], CONFIGS[8], CONFIGS[12], CONFIGS[17]],
        ids=lambda c: f"seed{c.seed}",
    )
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_all_topk_match_oracle(self, config, k):
        dataset = build_differential_dataset(config)
        eps_loc, eps_doc = 0.05, 0.3
        expected = topk_stps_join(dataset, eps_loc, eps_doc, k, algorithm="naive")
        for algorithm in TOPK_ALGOS:
            got = topk_stps_join(dataset, eps_loc, eps_doc, k, algorithm=algorithm)
            assert got == expected, (
                f"{algorithm} diverged on seed={config.seed} k={k}"
            )


class TestDegenerateCases:
    def test_empty_dataset(self):
        dataset = STDataset.from_records([])
        for algorithm in ["naive"] + JOIN_ALGOS:
            assert _join(dataset, (0.05, 0.3, 0.2), algorithm) == []

    def test_single_user(self):
        dataset = STDataset.from_records([("solo", 0.1, 0.1, {"a", "b"})])
        for algorithm in ["naive"] + JOIN_ALGOS:
            assert _join(dataset, (0.05, 0.3, 0.2), algorithm) == []
        for algorithm in ["naive"] + TOPK_ALGOS:
            assert topk_stps_join(dataset, 0.05, 0.3, 3, algorithm=algorithm) == []

    def test_identical_users_at_eps_user_one(self):
        # Two users with identical point sets: sigma == 1.0 exactly, so
        # the pair must survive eps_user = 1.0 in every algorithm.
        records = []
        for user in ("a", "b"):
            records.append((user, 0.5, 0.5, {"x", "y"}))
            records.append((user, 0.6, 0.6, {"y", "z"}))
        dataset = STDataset.from_records(records)
        for algorithm in ["naive"] + JOIN_ALGOS:
            got = _join(dataset, (0.01, 1.0, 1.0), algorithm)
            assert [(p.user_a, p.user_b, p.score) for p in got] == [("a", "b", 1.0)], (
                algorithm
            )

    def test_eps_user_one_excludes_partial_matches(self):
        dataset = build_differential_dataset(CONFIGS[1])
        expected = _join(dataset, (0.05, 0.3, 1.0), "naive")
        for algorithm in JOIN_ALGOS:
            assert _join(dataset, (0.05, 0.3, 1.0), algorithm) == expected

    def test_eps_user_zero_rejected(self):
        # Definition 1 requires eps_user in (0, 1]; zero would admit every
        # pair and is rejected at query construction.
        with pytest.raises(ValueError):
            STPSJoinQuery(0.05, 0.3, 0.0)
        dataset = build_differential_dataset(CONFIGS[0])
        with pytest.raises(ValueError):
            stps_join(dataset, 0.05, 0.3, 0.0, algorithm="s-ppj-b")

    def test_all_empty_documents(self):
        dataset = build_differential_dataset(
            DifferentialConfig(seed=21, n_users=6, empty_doc_fraction=1.0)
        )
        for algorithm in ["naive"] + JOIN_ALGOS:
            assert _join(dataset, (0.5, 0.3, 0.1), algorithm) == []
