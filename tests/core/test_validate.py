"""The cross-algorithm comparison tool."""

import pytest

from repro import STPSJoinQuery
from repro.core.validate import compare_algorithms
from tests.helpers import build_clustered_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_clustered_dataset(6, n_users=10)


QUERY = STPSJoinQuery(0.05, 0.3, 0.2)


class TestCompareAlgorithms:
    def test_default_competitors_agree(self, dataset):
        report = compare_algorithms(dataset, QUERY)
        assert report.agreed
        assert {r.algorithm for r in report.runs} == {
            "s-ppj-c",
            "s-ppj-b",
            "s-ppj-f",
            "s-ppj-d",
        }
        assert all(r.seconds > 0 for r in report.runs)

    def test_with_naive(self, dataset):
        report = compare_algorithms(
            dataset, QUERY, algorithms=("naive", "s-ppj-f")
        )
        assert report.agreed

    def test_summary_mentions_agreement(self, dataset):
        report = compare_algorithms(dataset, QUERY, algorithms=("s-ppj-f",))
        assert "all algorithms agree" in report.summary()
        assert "s-ppj-f" in report.summary()

    def test_fastest(self, dataset):
        report = compare_algorithms(
            dataset, QUERY, algorithms=("s-ppj-c", "s-ppj-f")
        )
        assert report.fastest().seconds == min(r.seconds for r in report.runs)

    def test_unknown_algorithm(self, dataset):
        with pytest.raises(ValueError, match="unknown algorithms"):
            compare_algorithms(dataset, QUERY, algorithms=("nope",))

    def test_empty_algorithm_list(self, dataset):
        with pytest.raises(ValueError):
            compare_algorithms(dataset, QUERY, algorithms=())

    def test_result_sizes_consistent(self, dataset):
        report = compare_algorithms(dataset, QUERY)
        sizes = {r.result_size for r in report.runs}
        assert len(sizes) == 1
