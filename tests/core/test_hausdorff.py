"""Hausdorff distance comparator."""

import math

import pytest

from repro import STDataset
from repro.core.hausdorff import (
    directed_hausdorff,
    hausdorff_distance,
    topk_hausdorff_pairs,
)


def objects_of(records):
    return STDataset.from_records(records).objects


class TestDirected:
    def test_known_value(self):
        a = objects_of([("u", 0, 0, {"x"}), ("u", 1, 0, {"x"})])
        b = objects_of([("v", 0, 0, {"x"})])
        # Farthest point of a is (1,0), closest b point at distance 1.
        assert directed_hausdorff(a, b) == pytest.approx(1.0)
        assert directed_hausdorff(b, a) == pytest.approx(0.0)

    def test_empty_sets_infinite(self):
        a = objects_of([("u", 0, 0, {"x"})])
        assert directed_hausdorff(a, []) == math.inf
        assert directed_hausdorff([], a) == math.inf


class TestSymmetric:
    def test_max_of_directed(self):
        a = objects_of([("u", 0, 0, {"x"}), ("u", 1, 0, {"x"})])
        b = objects_of([("v", 0, 0, {"x"})])
        assert hausdorff_distance(a, b) == pytest.approx(1.0)

    def test_symmetric(self):
        a = objects_of([("u", 0, 0, {"x"}), ("u", 3, 4, {"x"})])
        b = objects_of([("v", 1, 1, {"x"})])
        assert hausdorff_distance(a, b) == pytest.approx(hausdorff_distance(b, a))

    def test_identical_sets_zero(self):
        a = objects_of([("u", 0, 0, {"x"}), ("u", 1, 1, {"x"})])
        assert hausdorff_distance(a, a) == 0.0

    def test_outlier_dominates(self):
        """One stray point dominates Hausdorff — the behaviour sigma avoids."""
        base = [("u", 0.0, 0.0, {"x"}), ("u", 0.1, 0.0, {"x"})]
        with_outlier = base + [("u", 100.0, 100.0, {"x"})]
        a = objects_of(base)
        b = objects_of(with_outlier)
        assert hausdorff_distance(a, b) > 100.0


class TestTopK:
    def test_closest_pairs_first(self):
        ds = STDataset.from_records(
            [
                ("a", 0.0, 0.0, {"x"}),
                ("b", 0.001, 0.0, {"x"}),
                ("c", 10.0, 10.0, {"x"}),
            ]
        )
        pairs = topk_hausdorff_pairs(ds, 2)
        assert pairs[0][:2] == ("a", "b")
        assert pairs[0][2] <= pairs[1][2]

    def test_invalid_k(self, tiny_dataset):
        with pytest.raises(ValueError):
            topk_hausdorff_pairs(tiny_dataset, 0)
