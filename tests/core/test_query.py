"""Query/result type validation."""

import pytest

from repro.core.query import STPSJoinQuery, TopKQuery, UserPair, pairs_to_dict


class TestSTPSJoinQuery:
    def test_valid(self):
        q = STPSJoinQuery(0.01, 0.5, 0.5)
        assert q.eps_loc == 0.01

    def test_zero_eps_loc_allowed(self):
        # Exact co-location requirement is legal.
        STPSJoinQuery(0.0, 0.5, 0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(eps_loc=-0.1, eps_doc=0.5, eps_user=0.5),
            dict(eps_loc=0.1, eps_doc=0.0, eps_user=0.5),
            dict(eps_loc=0.1, eps_doc=1.5, eps_user=0.5),
            dict(eps_loc=0.1, eps_doc=0.5, eps_user=0.0),
            dict(eps_loc=0.1, eps_doc=0.5, eps_user=1.1),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            STPSJoinQuery(**kwargs)

    def test_frozen(self):
        q = STPSJoinQuery(0.1, 0.5, 0.5)
        with pytest.raises(AttributeError):
            q.eps_loc = 0.2  # type: ignore[misc]


class TestTopKQuery:
    def test_valid(self):
        assert TopKQuery(0.1, 0.5, 3).k == 3

    @pytest.mark.parametrize("k", [0, -1])
    def test_invalid_k(self, k):
        with pytest.raises(ValueError):
            TopKQuery(0.1, 0.5, k)


class TestUserPair:
    def test_key(self):
        assert UserPair("a", "b", 0.5).key == ("a", "b")

    def test_pairs_to_dict(self):
        pairs = [UserPair("a", "b", 0.5), UserPair("a", "c", 0.7)]
        assert pairs_to_dict(pairs) == {("a", "b"): 0.5, ("a", "c"): 0.7}
