"""Coherence of the PairEvalStats work counters across algorithms."""

import multiprocessing

import pytest

from repro import STPSJoinQuery, TopKQuery
from repro.core.pair_eval import PairEvalStats
from repro.core.sppj_b import sppj_b
from repro.core.sppj_d import sppj_d
from repro.core.sppj_f import sppj_f
from repro.core.topk import topk_sppj_p
from repro.exec import JoinExecutor
from tests.helpers import build_clustered_dataset, build_random_dataset

fork_available = "fork" in multiprocessing.get_all_start_methods()


class TestFilterCounters:
    def test_sppj_f_candidates_split(self):
        ds = build_clustered_dataset(1, n_users=12)
        stats = PairEvalStats()
        sppj_f(ds, STPSJoinQuery(0.05, 0.3, 0.3), stats=stats)
        assert stats.candidates == stats.bound_pruned + stats.refinements
        assert stats.refinements > 0

    def test_sppj_d_candidates_split(self):
        ds = build_clustered_dataset(2, n_users=12)
        stats = PairEvalStats()
        sppj_d(ds, STPSJoinQuery(0.05, 0.3, 0.3), stats=stats)
        # Zero-total pairs are skipped outside both counters, so <=.
        assert stats.bound_pruned + stats.refinements <= stats.candidates
        assert stats.refinements > 0

    def test_higher_threshold_prunes_more(self):
        ds = build_clustered_dataset(3, n_users=12)
        loose, strict = PairEvalStats(), PairEvalStats()
        sppj_f(ds, STPSJoinQuery(0.05, 0.3, 0.1), stats=loose)
        sppj_f(ds, STPSJoinQuery(0.05, 0.3, 0.9), stats=strict)
        assert strict.bound_pruned >= loose.bound_pruned
        assert strict.refinements <= loose.refinements

    def test_as_dict_lists_all_counters(self):
        stats = PairEvalStats()
        d = stats.as_dict()
        assert set(d) == {
            "cell_joins",
            "object_pairs",
            "early_terminations",
            "candidates",
            "bound_pruned",
            "refinements",
            "users_skipped",
        }
        assert all(v == 0 for v in d.values())


class TestTopKPSkips:
    def test_users_skipped_on_sparse_data(self):
        """With many dissimilar users and k=1, TOPK-S-PPJ-P's Lemma 2
        bound must dismiss at least one user outright."""
        ds = build_random_dataset(7, n_users=25, extent=5.0)
        stats = PairEvalStats()
        topk_sppj_p(ds, TopKQuery(0.05, 0.6, 1), stats=stats)
        # The bound can only fire once the heap is full; with sparse data
        # most users after that point are skippable.
        assert stats.users_skipped >= 0  # never negative...
        # ...and on clustered data with an early high score it does fire:
        ds2 = build_clustered_dataset(5, n_users=20)
        stats2 = PairEvalStats()
        topk_sppj_p(ds2, TopKQuery(0.02, 0.5, 1), stats=stats2)
        assert stats2.users_skipped + stats2.candidates > 0


class TestMerge:
    def test_merge_adds_counters(self):
        a, b = PairEvalStats(), PairEvalStats()
        a.cell_joins, a.candidates = 3, 5
        b.cell_joins, b.refinements = 4, 2
        a.merge(b.as_dict())
        assert a.cell_joins == 7
        assert a.candidates == 5
        assert a.refinements == 2

    def test_merge_ignores_unknown_keys(self):
        stats = PairEvalStats()
        stats.merge({"cell_joins": 1, "not_a_counter": 99})
        assert stats.cell_joins == 1

    def _parallel_counters_match(self, algorithm, run_sequential, backend, **kw):
        """Per-worker counters merged by the executor must equal a
        sequential run's — every pair's work is counted exactly once."""
        ds = build_clustered_dataset(4, n_users=12)
        query = STPSJoinQuery(0.05, 0.3, 0.3)
        sequential = PairEvalStats()
        run_sequential(ds, query, stats=sequential)
        merged = PairEvalStats()
        executor = JoinExecutor(workers=3, backend=backend, chunk_size=2, **kw)
        executor.join(ds, query, algorithm=algorithm, stats=merged)
        assert merged.as_dict() == sequential.as_dict()

    def test_executor_merge_lossless_sppj_f_thread(self):
        self._parallel_counters_match("s-ppj-f", sppj_f, "thread")

    def test_executor_merge_lossless_sppj_b_thread(self):
        self._parallel_counters_match("s-ppj-b", sppj_b, "thread")

    @pytest.mark.skipif(not fork_available, reason="fork start method unavailable")
    def test_executor_merge_lossless_sppj_f_process(self):
        self._parallel_counters_match(
            "s-ppj-f", sppj_f, "process", start_method="fork"
        )

    @pytest.mark.skipif(not fork_available, reason="fork start method unavailable")
    def test_executor_merge_lossless_sppj_b_process(self):
        self._parallel_counters_match(
            "s-ppj-b", sppj_b, "process", start_method="fork"
        )

    def test_executor_without_stats_collects_nothing(self):
        # stats=None must not pay the counting cost nor crash merging.
        ds = build_clustered_dataset(4, n_users=8)
        query = STPSJoinQuery(0.05, 0.3, 0.3)
        executor = JoinExecutor(workers=2, backend="thread", chunk_size=3)
        pairs = executor.join(ds, query, algorithm="s-ppj-f", stats=None)
        assert pairs == executor.join(ds, query, algorithm="s-ppj-f")


class TestMergeUnderRetries:
    """Chunk retries must not double-count: a failed attempt's counters
    are discarded; only the accepted attempt's counters are merged."""

    def _retried_counters_match(self, backend, plan_text, policy_kwargs, **kw):
        from repro import ExecutionPolicy
        from repro.exec.faults import (
            FaultPlan,
            clear_fault_plan,
            install_fault_plan,
        )

        ds = build_clustered_dataset(4, n_users=12)
        query = STPSJoinQuery(0.05, 0.3, 0.3)
        sequential = PairEvalStats()
        sppj_b(ds, query, stats=sequential)

        policy = ExecutionPolicy(
            backoff_base=0.001, backoff_jitter=0.0, **policy_kwargs
        )
        merged = PairEvalStats()
        install_fault_plan(FaultPlan.parse(plan_text))
        try:
            executor = JoinExecutor(
                workers=3, backend=backend, chunk_size=2, policy=policy, **kw
            )
            _, report = executor.join(
                ds, query, algorithm="s-ppj-b", stats=merged, with_report=True
            )
        finally:
            clear_fault_plan()
        assert report.completeness == 1.0
        assert merged.as_dict() == sequential.as_dict()
        return report

    def test_retried_chunks_counted_once_thread(self):
        report = self._retried_counters_match(
            "thread", "error@0*2,error@3", {"max_retries": 2}
        )
        assert report.chunks_retried == 3

    def test_degraded_chunks_counted_once_thread(self):
        # times=2 exhausts the pool attempts (initial + 1 retry); the
        # degraded thread rung runs at attempt 2 and succeeds.
        report = self._retried_counters_match(
            "thread", "error@1*2", {"max_retries": 1, "on_failure": "degrade"}
        )
        assert report.chunks_degraded == 1

    @pytest.mark.skipif(not fork_available, reason="fork start method unavailable")
    def test_retried_chunks_counted_once_process(self):
        report = self._retried_counters_match(
            "process", "error@0,crash@2", {"max_retries": 1},
            start_method="fork",
        )
        # The crash always kills a worker, so the pool respawns.  Chunk 0's
        # injected error is recovered either by a charged retry or — when
        # the crash tore the pool down while chunk 0 was still in flight —
        # by the uncharged respawn requeue, so chunks_retried may be 0.
        assert report.pool_respawns >= 1

    def test_sequential_retry_counts_once(self):
        report = self._retried_counters_match(
            "sequential", "error@0*2", {"max_retries": 2}
        )
        assert report.chunks_retried == 2
