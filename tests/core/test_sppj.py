"""Cross-algorithm equivalence: every S-PPJ variant must reproduce the
exhaustive STPSJoin semantics exactly — same pairs, same scores.

This is the correctness anchor of the whole library.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import STDataset, STPSJoinQuery, naive_stps_join, stps_join
from repro.core.pair_eval import PairEvalStats
from repro.core.query import pairs_to_dict
from repro.core.sppj_b import sppj_b
from repro.core.sppj_c import sppj_c
from repro.core.sppj_d import sppj_d
from repro.core.sppj_f import sppj_f
from repro.stindex.leaf_index import STLeafIndex
from tests.helpers import build_clustered_dataset, build_random_dataset

ALGORITHMS = ("s-ppj-c", "s-ppj-b", "s-ppj-f", "s-ppj-d")

THRESHOLDS = [
    (0.10, 0.30, 0.20),
    (0.30, 0.50, 0.40),
    (0.05, 0.20, 0.10),
    (0.20, 0.40, 0.70),
    (0.50, 1.00, 0.50),
]


def assert_same_pairs(expected, got, context=""):
    exp, act = pairs_to_dict(expected), pairs_to_dict(got)
    assert set(act) == set(exp), (
        f"{context}: missing {set(exp) - set(act)}, extra {set(act) - set(exp)}"
    )
    for key, score in act.items():
        assert score == pytest.approx(exp[key]), f"{context}: score mismatch at {key}"


class TestCrossAlgorithmEquivalence:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("thresholds", THRESHOLDS)
    def test_random_datasets(self, algorithm, thresholds):
        for seed in range(6):
            ds = build_random_dataset(seed, n_users=10)
            query = STPSJoinQuery(*thresholds)
            expected = naive_stps_join(ds, query)
            got = stps_join(ds, *thresholds, algorithm=algorithm)
            assert_same_pairs(expected, got, f"{algorithm} seed={seed}")

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_clustered_datasets_nontrivial_results(self, algorithm):
        found_any = False
        for seed in range(5):
            ds = build_clustered_dataset(seed, n_users=8)
            thresholds = (0.05, 0.3, 0.3)
            expected = naive_stps_join(ds, STPSJoinQuery(*thresholds))
            found_any = found_any or bool(expected)
            got = stps_join(ds, *thresholds, algorithm=algorithm)
            assert_same_pairs(expected, got, f"{algorithm} clustered seed={seed}")
        assert found_any, "clustered datasets should produce non-empty joins"

    @given(st.integers(0, 1000), st.sampled_from(THRESHOLDS))
    @settings(max_examples=20, deadline=None)
    def test_property_fuzz(self, seed, thresholds):
        ds = build_random_dataset(seed, n_users=8, max_objects=6)
        expected = naive_stps_join(ds, STPSJoinQuery(*thresholds))
        for algorithm in ALGORITHMS:
            got = stps_join(ds, *thresholds, algorithm=algorithm)
            assert_same_pairs(expected, got, f"{algorithm} fuzz seed={seed}")


class TestFigure1Scenario:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_only_u1_u3_pair(self, tiny_dataset, algorithm):
        pairs = stps_join(
            tiny_dataset, 0.005, 0.3, 0.5, algorithm=algorithm
        )
        assert [(p.user_a, p.user_b) for p in pairs] == [("u1", "u3")]
        assert pairs[0].score == pytest.approx(0.8)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_high_threshold_empty(self, tiny_dataset, algorithm):
        assert stps_join(tiny_dataset, 0.005, 0.3, 0.9, algorithm=algorithm) == []


class TestEdgeCases:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_single_user(self, algorithm):
        ds = STDataset.from_records([("u", 0, 0, {"x"}), ("u", 1, 1, {"y"})])
        assert stps_join(ds, 0.1, 0.5, 0.5, algorithm=algorithm) == []

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_empty_dataset(self, algorithm):
        ds = STDataset.from_records([])
        assert stps_join(ds, 0.1, 0.5, 0.5, algorithm=algorithm) == []

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_identical_twin_users(self, algorithm):
        records = []
        for user in ("a", "b"):
            records.append((user, 0.5, 0.5, {"x", "y"}))
            records.append((user, 0.7, 0.7, {"z"}))
        ds = STDataset.from_records(records)
        pairs = stps_join(ds, 0.01, 1.0, 1.0, algorithm=algorithm)
        assert len(pairs) == 1
        assert pairs[0].score == pytest.approx(1.0)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_objects_same_location(self, algorithm):
        """Everything in one grid cell / one leaf."""
        records = [
            ("a", 0.5, 0.5, {"x"}),
            ("b", 0.5, 0.5, {"x"}),
            ("c", 0.5, 0.5, {"q"}),
        ]
        ds = STDataset.from_records(records)
        pairs = stps_join(ds, 0.001, 1.0, 1.0, algorithm=algorithm)
        assert {(p.user_a, p.user_b) for p in pairs} == {("a", "b")}

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_keywordless_objects_never_match(self, algorithm):
        records = [("a", 0.5, 0.5, []), ("b", 0.5, 0.5, [])]
        ds = STDataset.from_records(records)
        assert stps_join(ds, 0.1, 0.5, 0.1, algorithm=algorithm) == []

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_eps_user_exact_boundary(self, algorithm):
        """sigma == eps_user must be included (>= semantics)."""
        records = [
            ("a", 0.0, 0.0, {"x"}),
            ("a", 9.0, 9.0, {"faraway"}),
            ("b", 0.0, 0.0, {"x"}),
            ("b", 5.0, 5.0, {"elsewhere"}),
        ]
        ds = STDataset.from_records(records)
        # 2 of 4 objects match -> sigma = 0.5 exactly.
        pairs = stps_join(ds, 0.1, 1.0, 0.5, algorithm=algorithm)
        assert len(pairs) == 1 and pairs[0].score == pytest.approx(0.5)

    def test_results_sorted_by_score(self):
        ds = build_clustered_dataset(3, n_users=10)
        pairs = stps_join(ds, 0.05, 0.3, 0.1)
        scores = [p.score for p in pairs]
        assert scores == sorted(scores, reverse=True)


class TestAlgorithmInternals:
    def test_sppj_b_early_terminates(self):
        """On a dataset with scattered users, PPJ-B must actually prune."""
        ds = build_random_dataset(1, n_users=15, extent=10.0)
        stats = PairEvalStats()
        sppj_b(ds, STPSJoinQuery(0.05, 0.5, 0.5), stats=stats)
        assert stats.early_terminations > 0

    def test_sppj_f_prunes_pairs_entirely(self):
        """S-PPJ-F must evaluate fewer cell joins than S-PPJ-C."""
        ds = build_random_dataset(2, n_users=15, extent=10.0)
        query = STPSJoinQuery(0.05, 0.5, 0.5)
        stats_c, stats_f = PairEvalStats(), PairEvalStats()
        sppj_c(ds, query, stats=stats_c)
        sppj_f(ds, query, stats=stats_f)
        assert stats_f.cell_joins <= stats_c.cell_joins

    def test_sppj_d_accepts_prebuilt_index(self):
        ds = build_clustered_dataset(4, n_users=8)
        query = STPSJoinQuery(0.05, 0.3, 0.3)
        index = STLeafIndex(ds, query.eps_loc, fanout=32)
        expected = naive_stps_join(ds, query)
        got = sppj_d(ds, query, index=index)
        assert_same_pairs(expected, got, "prebuilt index")

    def test_sppj_d_rejects_mismatched_index(self):
        ds = build_clustered_dataset(4, n_users=4)
        index = STLeafIndex(ds, 0.01, fanout=32)
        with pytest.raises(ValueError):
            sppj_d(ds, STPSJoinQuery(0.05, 0.3, 0.3), index=index)

    @pytest.mark.parametrize("fanout", [4, 16, 64, 256])
    def test_sppj_d_fanout_invariant_results(self, fanout):
        ds = build_clustered_dataset(5, n_users=8)
        thresholds = (0.05, 0.3, 0.3)
        expected = naive_stps_join(ds, STPSJoinQuery(*thresholds))
        got = stps_join(ds, *thresholds, algorithm="s-ppj-d", fanout=fanout)
        assert_same_pairs(expected, got, f"fanout={fanout}")

    @pytest.mark.parametrize("seed", range(4))
    def test_sppj_d_quadtree_partitioning(self, seed):
        ds = build_clustered_dataset(seed, n_users=8)
        thresholds = (0.05, 0.3, 0.3)
        expected = naive_stps_join(ds, STPSJoinQuery(*thresholds))
        got = stps_join(
            ds, *thresholds, algorithm="s-ppj-d", partitioner="quadtree", fanout=16
        )
        assert_same_pairs(expected, got, f"quadtree seed={seed}")

    @pytest.mark.parametrize("seed", range(3))
    def test_sppj_f_refine_ablation_equivalent(self, seed):
        from repro.core.sppj_f import sppj_f as _sppj_f

        ds = build_clustered_dataset(seed, n_users=8)
        query = STPSJoinQuery(0.05, 0.3, 0.3)
        with_b = {p.key for p in _sppj_f(ds, query, refine="ppj-b")}
        with_c = {p.key for p in _sppj_f(ds, query, refine="ppj-c")}
        assert with_b == with_c

    def test_sppj_f_unknown_refine(self):
        from repro.core.sppj_f import sppj_f as _sppj_f

        ds = build_clustered_dataset(0, n_users=4)
        with pytest.raises(ValueError):
            _sppj_f(ds, STPSJoinQuery(0.05, 0.3, 0.3), refine="magic")

    def test_sppj_d_unknown_partitioner(self):
        ds = build_clustered_dataset(0, n_users=4)
        with pytest.raises(ValueError):
            stps_join(
                ds, 0.05, 0.3, 0.3, algorithm="s-ppj-d", partitioner="voronoi"
            )
