"""Tests for the matching predicate and point-set similarity measure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import STDataset
from repro.core.similarity import (
    matched_object_count,
    matched_objects,
    objects_match,
    set_similarity,
    text_similarity,
)


def make_objects(records):
    return STDataset.from_records(records).objects


class TestTextSimilarity:
    def test_jaccard_value(self):
        a, b = make_objects(
            [("u", 0, 0, {"x", "y", "z"}), ("v", 0, 0, {"y", "z", "w"})]
        )
        assert text_similarity(a, b) == pytest.approx(0.5)

    def test_empty_doc_zero(self):
        a, b = make_objects([("u", 0, 0, []), ("v", 0, 0, {"x"})])
        assert text_similarity(a, b) == 0.0
        assert text_similarity(b, a) == 0.0

    def test_both_empty_zero(self):
        a, b = make_objects([("u", 0, 0, []), ("v", 0, 0, [])])
        assert text_similarity(a, b) == 0.0

    def test_symmetric(self):
        a, b = make_objects([("u", 0, 0, {"x", "y"}), ("v", 0, 0, {"y"})])
        assert text_similarity(a, b) == text_similarity(b, a)


class TestObjectsMatch:
    def test_requires_both_predicates(self):
        a, b = make_objects(
            [("u", 0.0, 0.0, {"x", "y"}), ("v", 0.0, 0.1, {"x", "y"})]
        )
        assert objects_match(a, b, eps_loc=0.2, eps_doc=0.9)
        assert not objects_match(a, b, eps_loc=0.05, eps_doc=0.9)  # too far
        assert not objects_match(a, b, eps_loc=0.2, eps_doc=1.01)  # impossible

    def test_boundary_distances_inclusive(self):
        a, b = make_objects([("u", 0.0, 0.0, {"x"}), ("v", 0.3, 0.0, {"x"})])
        assert objects_match(a, b, eps_loc=0.3, eps_doc=1.0)

    def test_same_user_objects_can_match(self):
        # mu is user-agnostic; set semantics filter by user, not mu.
        a, b = make_objects([("u", 0, 0, {"x"}), ("u", 0, 0, {"x"})])
        assert objects_match(a, b, 0.1, 1.0)


class TestSetSimilarity:
    def test_figure1_scenario(self, tiny_dataset):
        du1 = tiny_dataset.user_objects("u1")
        du3 = tiny_dataset.user_objects("u3")
        # u1: both objects match; u3: two of three.
        assert set_similarity(du1, du3, eps_loc=0.005, eps_doc=0.3) == pytest.approx(
            4 / 5
        )

    def test_disjoint_users_zero(self, tiny_dataset):
        du1 = tiny_dataset.user_objects("u1")
        du2 = tiny_dataset.user_objects("u2")
        assert set_similarity(du1, du2, eps_loc=0.005, eps_doc=0.3) == 0.0

    def test_empty_sets(self):
        assert set_similarity([], [], 0.1, 0.5) == 0.0

    def test_matched_objects_subset(self, tiny_dataset):
        du1 = tiny_dataset.user_objects("u1")
        du3 = tiny_dataset.user_objects("u3")
        m = matched_objects(du1, du3, 0.005, 0.3)
        assert m == {o.oid for o in du1}

    def test_matched_count_consistent(self, tiny_dataset):
        du1 = tiny_dataset.user_objects("u1")
        du3 = tiny_dataset.user_objects("u3")
        count = matched_object_count(du1, du3, 0.005, 0.3)
        expected = len(matched_objects(du1, du3, 0.005, 0.3)) + len(
            matched_objects(du3, du1, 0.005, 0.3)
        )
        assert count == expected

    @given(st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_sigma_in_unit_interval_and_symmetric(self, seed):
        from tests.helpers import build_random_dataset

        ds = build_random_dataset(seed, n_users=4)
        users = ds.users
        a = ds.user_objects(users[0])
        b = ds.user_objects(users[1])
        s_ab = set_similarity(a, b, 0.2, 0.4)
        s_ba = set_similarity(b, a, 0.2, 0.4)
        assert 0.0 <= s_ab <= 1.0
        assert s_ab == pytest.approx(s_ba)

    def test_self_similarity_is_one(self):
        objs = make_objects([("u", 0, 0, {"x"}), ("u", 5, 5, {"y"})])
        assert set_similarity(objs, objs, 0.1, 1.0) == 1.0
