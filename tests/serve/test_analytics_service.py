"""Live query analytics through JoinService and the HTTP endpoints.

Covers the audit trail per outcome class, the latency breakdown and
cost-calibration capture, slow-query EXPLAIN recapture, the SLO
watchdog flipping ``/health`` to degraded, the opt-out contract
(byte-identical payloads, empty surfaces) and the new ``/stats``,
``/audit/*`` and ``/datasets/<name>/stats`` endpoints.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.exec import DeadlineExceeded
from repro.obs.analytics import STATS_SCHEMA_VERSION, SLOPolicy
from repro.serve import (
    JoinHTTPServer,
    JoinService,
    QueryError,
    ServeClient,
    ServerError,
    UnknownDatasetError,
    serve_forever,
)
from tests.helpers import build_clustered_dataset

EPS_LOC, EPS_DOC, EPS_USER, K = 0.05, 0.3, 0.2, 5


@pytest.fixture(scope="module")
def dataset():
    return build_clustered_dataset(seed=11, n_users=12, objects_per_user=6)


@pytest.fixture()
def service(dataset):
    svc = JoinService(cache_capacity=32)
    svc.register_dataset("demo", dataset)
    return svc


def _join_request(**extra):
    return {
        "type": "join",
        "dataset": "demo",
        "eps_loc": EPS_LOC,
        "eps_doc": EPS_DOC,
        "eps_user": EPS_USER,
        **extra,
    }


class TestAuditTrail:
    def test_ok_record_is_complete(self, service):
        service.query(_join_request())
        (record,) = service.audit_tail()
        assert record["outcome"] == "ok"
        assert record["dataset"] == "demo"
        assert record["algorithm"] == "s-ppj-f"
        assert record["cache"] == "miss"
        assert record["fingerprint"] == service.registry.get("demo").fingerprint
        assert set(record["timings"]) == {
            "queue", "setup", "execute", "serialize"
        }
        assert all(v >= 0 for v in record["timings"].values())
        assert record["run_id"]
        assert record["seconds"] > 0
        assert record["result_count"] is not None
        assert record["kernel"] in ("numpy", "python")
        assert record["params"]["eps_loc"] == EPS_LOC

    def test_cache_hit_recorded(self, service):
        service.query(_join_request())
        service.query(_join_request())
        records = service.audit_tail()
        assert [r["cache"] for r in records] == ["miss", "hit"]
        assert [r["outcome"] for r in records] == ["ok", "ok"]

    def test_calibration_recorded_for_engine_runs(self, service):
        service.query(_join_request(algorithm="s-ppj-c"))
        (record,) = service.audit_tail()
        calibration = record["calibration"]
        assert calibration["chunks"] > 0
        assert (
            calibration["ratio_min"]
            <= calibration["ratio_median"]
            <= calibration["ratio_max"]
        )
        assert calibration["seconds_per_cost"] > 0

    def test_bad_request_recorded_and_raised(self, service):
        with pytest.raises(QueryError):
            service.query(_join_request(eps_loc="bogus"))
        (record,) = service.audit_tail()
        assert record["outcome"] == "bad_request"
        assert record["error"] == "QueryError"
        assert record["dataset"] == "demo"

    def test_unknown_dataset_recorded(self, service):
        with pytest.raises(UnknownDatasetError):
            service.query(_join_request(dataset="nope"))
        (record,) = service.audit_tail()
        assert record["outcome"] == "unknown_dataset"
        assert record["dataset"] == "nope"

    def test_deadline_recorded(self, service):
        with pytest.raises(DeadlineExceeded):
            service.query(_join_request(deadline=1e-9, no_cache=True))
        (record,) = service.audit_tail()
        assert record["outcome"] == "deadline"
        assert record["error"] == "DeadlineExceeded"

    def test_window_sees_every_outcome(self, service):
        service.query(_join_request())
        with pytest.raises(UnknownDatasetError):
            service.query(_join_request(dataset="nope"))
        snapshot = service.window.snapshot()
        keys = {(g["dataset"], g["algorithm"]): g for g in snapshot["groups"]}
        assert keys[("demo", "s-ppj-f")]["ok"] == 1
        assert keys[("nope", "s-ppj-f")]["errors"] == 1

    def test_concurrent_queries_audited_exactly_once(self, dataset):
        svc = JoinService(cache_capacity=0, audit_ring=16)
        svc.register_dataset("demo", dataset)
        threads = 8
        barrier = threading.Barrier(threads)
        errors = []

        def worker() -> None:
            barrier.wait()
            try:
                for _ in range(5):
                    svc.query(_join_request(no_cache=True))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert not errors
        stats = svc.audit.stats()
        assert stats["recorded"] == threads * 5
        assert stats["ring_size"] == 16
        seqs = [r["seq"] for r in svc.audit.tail(n=-1)]
        assert seqs == sorted(seqs)


class TestSlowQueryLog:
    def test_slow_query_recaptured_with_full_explain(self, dataset):
        svc = JoinService(slow_threshold=1e-9)  # everything is slow
        svc.register_dataset("demo", dataset)
        svc.query(_join_request())
        (entry,) = [
            e for e in svc.slow_entries()
            if e["record"]["outcome"] == "ok"
        ]
        assert entry["recaptured"]
        explain = entry["explain"]
        assert explain["kind"] == "explain"
        assert explain["user_funnel"]
        assert explain["cost_calibration"]["chunks"] > 0

    def test_deadline_query_recaptured_without_deadline(self, dataset):
        svc = JoinService(slow_threshold=1e-9)
        svc.register_dataset("demo", dataset)
        with pytest.raises(DeadlineExceeded):
            svc.query(_join_request(deadline=1e-9, no_cache=True))
        entries = [
            e for e in svc.slow_entries()
            if e["record"]["outcome"] == "deadline"
        ]
        assert entries
        # The recapture re-ran without the lethal deadline, so the
        # explain is complete even though the original query 504'd.
        assert entries[-1]["recaptured"]
        assert entries[-1]["explain"]["kind"] == "explain"

    def test_explain_query_reuses_its_own_report(self, dataset):
        svc = JoinService(slow_threshold=1e-9)
        svc.register_dataset("demo", dataset)
        svc.query(_join_request(explain=True))
        entry = svc.slow_entries()[-1]
        assert entry["explain"]["kind"] == "explain"
        assert not entry["recaptured"]

    def test_cache_hits_not_slow_logged(self, dataset):
        svc = JoinService(slow_threshold=1e-9)
        svc.register_dataset("demo", dataset)
        svc.query(_join_request())
        svc.query(_join_request())  # hit
        hits = [
            e for e in svc.slow_entries()
            if e["record"]["cache"] == "hit"
        ]
        assert not hits

    def test_knn_slow_logged_without_explain(self, dataset):
        svc = JoinService(slow_threshold=1e-9)
        svc.register_dataset("demo", dataset)
        svc.query(
            {
                "type": "knn",
                "dataset": "demo",
                "user": next(iter(dataset.users)),
                "eps_loc": EPS_LOC,
                "eps_doc": EPS_DOC,
                "k": K,
            }
        )
        (entry,) = svc.slow_entries()
        assert entry["record"]["type"] == "knn"
        assert entry["explain"] is None  # explain unsupported for knn
        assert not entry["recaptured"]


class TestSLOWatchdog:
    def test_breach_degrades_health(self, dataset):
        svc = JoinService(slo=SLOPolicy(error_rate=0.1, min_count=1))
        svc.register_dataset("demo", dataset)
        with pytest.raises(UnknownDatasetError):
            svc.query(_join_request(dataset="nope"))
        stats = svc.stats()
        assert stats["status"] == "degraded"
        assert stats["slo_breaches"][0]["metric"] == "error_rate"
        snapshot = svc.analytics_snapshot()
        assert snapshot["slo"]["status"] == "degraded"

    def test_unconfigured_policy_never_degrades(self, service):
        with pytest.raises(UnknownDatasetError):
            service.query(_join_request(dataset="nope"))
        assert service.stats()["status"] == "ok"

    def test_healthy_when_within_targets(self, dataset):
        svc = JoinService(slo=SLOPolicy(p99_seconds=3600.0, min_count=1))
        svc.register_dataset("demo", dataset)
        svc.query(_join_request())
        assert svc.stats()["status"] == "ok"


class TestOptOut:
    def test_payload_byte_identical_with_analytics_off(self, dataset):
        svc_on = JoinService()
        svc_off = JoinService(analytics=False)
        for svc in (svc_on, svc_off):
            svc.register_dataset("demo", dataset)
        on = svc_on.query(_join_request())
        off = svc_off.query(_join_request())
        scrub = lambda p: {k: v for k, v in p.items() if k != "elapsed"}
        assert json.dumps(scrub(on), sort_keys=True) == json.dumps(
            scrub(off), sort_keys=True
        )

    def test_surfaces_empty_when_disabled(self, dataset):
        svc = JoinService(analytics=False)
        svc.register_dataset("demo", dataset)
        svc.query(_join_request())
        assert svc.audit is None
        assert svc.audit_tail() == []
        assert svc.slow_entries() == []
        snapshot = svc.analytics_snapshot()
        assert snapshot == {
            "schema_version": STATS_SCHEMA_VERSION,
            "analytics": False,
        }
        assert svc.stats()["analytics"] is False

    def test_metrics_text_fold(self, service):
        service.query(_join_request())
        text = service.metrics_text()
        assert "repro_serve_window_demo_s_ppj_f_p99" in text
        assert "repro_serve_audit_ring_size" in text


class TestAnalyticsSnapshot:
    def test_schema(self, service):
        service.query(_join_request())
        snapshot = service.analytics_snapshot()
        assert snapshot["schema_version"] == STATS_SCHEMA_VERSION
        assert snapshot["analytics"] is True
        window = snapshot["window"]
        assert window["groups"][0]["latency"]["p99"]["lower"] <= (
            window["groups"][0]["latency"]["p99"]["upper"]
        )
        assert snapshot["audit"]["recorded"] == 1
        assert snapshot["slow"]["ring_maxlen"] > 0


class TestHTTPEndpoints:
    @pytest.fixture()
    def served(self, dataset):
        service = JoinService(
            cache_capacity=32,
            slow_threshold=1e-9,
            slo=SLOPolicy(p99_seconds=3600.0),
        )
        service.register_dataset("demo", dataset)
        server = JoinHTTPServer(("127.0.0.1", 0), service, drain_timeout=2.0)
        thread = threading.Thread(
            target=serve_forever, args=(server, False), daemon=True
        )
        thread.start()
        client = ServeClient(f"http://127.0.0.1:{server.port}", timeout=10.0)
        try:
            yield client, service
        finally:
            server.initiate_shutdown()
            thread.join(timeout=10)

    def test_stats_endpoint(self, served):
        client, _ = served
        client.join("demo", EPS_LOC, EPS_DOC, EPS_USER)
        stats = client.stats()
        assert stats["schema_version"] == STATS_SCHEMA_VERSION
        assert stats["slo"]["configured"] is True
        assert stats["window"]["totals"]["count"] == 1

    def test_audit_tail_endpoint_with_filters(self, served):
        client, _ = served
        client.join("demo", EPS_LOC, EPS_DOC, EPS_USER)
        try:
            client.join("nope", EPS_LOC, EPS_DOC, EPS_USER)
        except ServerError:
            pass
        assert len(client.audit_tail(n=10)) == 2
        records = client.audit_tail(n=10, outcome="unknown_dataset")
        assert [r["dataset"] for r in records] == ["nope"]
        assert client.audit_tail(n=10, since_seq=2) == []

    def test_audit_slow_endpoint(self, served):
        client, _ = served
        client.join("demo", EPS_LOC, EPS_DOC, EPS_USER)
        entries = client.slow_queries()
        assert entries
        assert entries[-1]["explain"]["kind"] == "explain"

    def test_dataset_stats_endpoint(self, served, dataset):
        client, _ = served
        client.join("demo", EPS_LOC, EPS_DOC, EPS_USER)  # warms the grid
        profile = client.dataset_stats("demo")
        assert profile["name"] == "demo"
        assert profile["objects"] == len(dataset.objects)
        assert profile["users"] == dataset.num_users
        assert profile["distinct_tokens"] > 0
        (grid,) = profile["grids"]
        assert grid["eps_loc"] == EPS_LOC
        assert grid["occupied_cells"] > 0
        assert grid["objects"] == len(dataset.objects)

    def test_dataset_stats_unknown_404(self, served):
        client, _ = served
        with pytest.raises(ServerError) as excinfo:
            client.dataset_stats("missing")
        assert excinfo.value.status == 404

    def test_bad_tail_params_400(self, served):
        client, _ = served
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/audit/tail?n=bogus")
        assert excinfo.value.status == 400
