"""JoinService behaviour: byte-identical results, caching, fingerprints.

The central contract: a served result is **byte-identical** to the
direct API call on the same dataset, for every algorithm — the warm
shared index must never change what is computed, only how fast.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import stps_join, topk_stps_join
from repro.core.api import JOIN_ALGORITHMS, TOPK_ALGORITHMS
from repro.core.knn import similar_users
from repro.serve import (
    AdmissionRejected,
    JoinService,
    QueryError,
    UnknownDatasetError,
)
from tests.helpers import build_clustered_dataset, build_random_dataset

EPS_LOC, EPS_DOC, EPS_USER, K = 0.05, 0.3, 0.2, 5


@pytest.fixture(scope="module")
def dataset():
    return build_clustered_dataset(seed=11, n_users=12, objects_per_user=6)


@pytest.fixture()
def service(dataset):
    svc = JoinService(cache_capacity=32)
    svc.register_dataset("demo", dataset)
    return svc


def _encode_pairs(pairs):
    return [[p.user_a, p.user_b, p.score] for p in pairs]


class TestDifferential:
    """Server responses vs direct API calls, all algorithms."""

    @pytest.mark.parametrize("algorithm", sorted(JOIN_ALGORITHMS))
    def test_join_byte_identical(self, service, dataset, algorithm):
        response = service.query(
            {
                "type": "join",
                "dataset": "demo",
                "algorithm": algorithm,
                "eps_loc": EPS_LOC,
                "eps_doc": EPS_DOC,
                "eps_user": EPS_USER,
            }
        )
        kwargs = {"fanout": 100} if algorithm == "s-ppj-d" else {}
        direct = stps_join(
            dataset, EPS_LOC, EPS_DOC, EPS_USER, algorithm=algorithm, **kwargs
        )
        assert json.dumps(response["pairs"]) == json.dumps(
            _encode_pairs(direct)
        )

    @pytest.mark.parametrize("algorithm", sorted(TOPK_ALGORITHMS))
    def test_topk_byte_identical(self, service, dataset, algorithm):
        response = service.query(
            {
                "type": "topk",
                "dataset": "demo",
                "algorithm": algorithm,
                "eps_loc": EPS_LOC,
                "eps_doc": EPS_DOC,
                "k": K,
            }
        )
        direct = topk_stps_join(
            dataset, EPS_LOC, EPS_DOC, K, algorithm=algorithm
        )
        assert json.dumps(response["pairs"]) == json.dumps(
            _encode_pairs(direct)
        )

    def test_knn_byte_identical(self, service, dataset):
        for user in list(dataset.users)[:4]:
            response = service.query(
                {
                    "type": "knn",
                    "dataset": "demo",
                    "user": user,
                    "eps_loc": EPS_LOC,
                    "eps_doc": EPS_DOC,
                    "k": K,
                }
            )
            direct = similar_users(dataset, user, EPS_LOC, EPS_DOC, K)
            assert json.dumps(response["neighbours"]) == json.dumps(
                [[u, s] for u, s in direct]
            )

    def test_join_with_explain_matches_plain(self, service, dataset):
        plain = service.query(
            {
                "type": "join",
                "dataset": "demo",
                "eps_loc": EPS_LOC,
                "eps_doc": EPS_DOC,
                "eps_user": EPS_USER,
            }
        )
        explained = service.query(
            {
                "type": "join",
                "dataset": "demo",
                "eps_loc": EPS_LOC,
                "eps_doc": EPS_DOC,
                "eps_user": EPS_USER,
                "explain": True,
            }
        )
        assert explained["pairs"] == plain["pairs"]
        assert explained["explain"]["dataset_fingerprint"] == dataset.fingerprint()
        assert explained["explain"]["kind"] == "explain"


class TestCaching:
    def _join_request(self, **overrides):
        request = {
            "type": "join",
            "dataset": "demo",
            "eps_loc": EPS_LOC,
            "eps_doc": EPS_DOC,
            "eps_user": EPS_USER,
        }
        request.update(overrides)
        return request

    def test_repeat_query_hits_cache(self, service):
        first = service.query(self._join_request())
        second = service.query(self._join_request())
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["pairs"] == first["pairs"]
        stats = service.cache.stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_different_thresholds_miss(self, service):
        service.query(self._join_request())
        other = service.query(self._join_request(eps_user=0.9))
        assert other["cached"] is False
        assert service.cache.stats().hits == 0

    def test_no_cache_bypasses(self, service):
        service.query(self._join_request())
        again = service.query(self._join_request(no_cache=True))
        assert again["cached"] is False

    def test_explain_bypasses_cache(self, service):
        service.query(self._join_request())
        explained = service.query(self._join_request(explain=True))
        assert explained["cached"] is False
        assert "explain" in explained

    def test_content_versioning_by_fingerprint(self, dataset):
        """Replacing a dataset name with different content changes the
        fingerprint, so stale cached results can never be served."""
        service = JoinService(cache_capacity=32)
        service.register_dataset("demo", dataset)
        first = service.query(self._join_request())
        other = build_random_dataset(seed=5, n_users=12)
        service.register_dataset("demo", other)
        second = service.query(self._join_request())
        assert second["cached"] is False
        assert second["fingerprint"] != first["fingerprint"]
        direct = stps_join(other, EPS_LOC, EPS_DOC, EPS_USER)
        assert second["pairs"] == _encode_pairs(direct)

    def test_reregister_same_content_keeps_cache(self, service, dataset):
        service.query(self._join_request())
        service.register_dataset("demo", build_clustered_dataset(
            seed=11, n_users=12, objects_per_user=6
        ))
        again = service.query(self._join_request())
        assert again["cached"] is True

    def test_concurrent_same_query_all_identical(self, service):
        """Many threads issuing the same query concurrently all get the
        same pairs, whether served from cache or computed."""
        results = []
        errors = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def worker() -> None:
            barrier.wait()
            try:
                response = service.query(self._join_request())
                with lock:
                    results.append(json.dumps(response["pairs"]))
            except Exception as exc:  # pragma: no cover - failure detail
                with lock:
                    errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(set(results)) == 1
        stats = service.cache.stats()
        assert stats.hits + stats.misses == 8


class TestValidationAndLimits:
    def test_unknown_dataset(self, service):
        with pytest.raises(UnknownDatasetError):
            service.query({"type": "join", "dataset": "nope",
                           "eps_loc": 1, "eps_doc": 1, "eps_user": 1})

    def test_unknown_type(self, service):
        with pytest.raises(QueryError):
            service.query({"type": "frobnicate", "dataset": "demo"})

    def test_unknown_algorithm(self, service):
        with pytest.raises(QueryError):
            service.query({"type": "join", "dataset": "demo",
                           "algorithm": "quantum", "eps_loc": 1,
                           "eps_doc": 1, "eps_user": 1})

    def test_non_numeric_threshold(self, service):
        with pytest.raises(QueryError):
            service.query({"type": "join", "dataset": "demo",
                           "eps_loc": "wide", "eps_doc": 1, "eps_user": 1})

    def test_knn_needs_user(self, service):
        with pytest.raises(QueryError):
            service.query({"type": "knn", "dataset": "demo",
                           "eps_loc": 1, "eps_doc": 1, "k": 3})

    def test_explain_not_supported_for_knn(self, service):
        with pytest.raises(QueryError):
            service.query({"type": "knn", "dataset": "demo", "user": "u",
                           "eps_loc": 1, "eps_doc": 1, "k": 3,
                           "explain": True})

    def test_draining_service_rejects(self, service):
        service.drain(timeout=1)
        with pytest.raises(AdmissionRejected):
            service.query({"type": "join", "dataset": "demo",
                           "eps_loc": EPS_LOC, "eps_doc": EPS_DOC,
                           "eps_user": EPS_USER, "no_cache": True})


class TestFingerprint:
    def test_response_carries_fingerprint(self, service, dataset):
        response = service.query(
            {"type": "join", "dataset": "demo", "eps_loc": EPS_LOC,
             "eps_doc": EPS_DOC, "eps_user": EPS_USER}
        )
        assert response["fingerprint"] == dataset.fingerprint()

    def test_fingerprint_is_content_stable(self, dataset):
        """Same objects, different construction order: same fingerprint."""
        records = [
            (obj.user, obj.x, obj.y, set(dataset.vocab.decode(obj.doc)))
            for obj in dataset.objects
        ]
        from repro import STDataset

        rebuilt = STDataset.from_records(list(reversed(records)))
        assert rebuilt.fingerprint() == dataset.fingerprint()

    def test_execution_report_carries_fingerprint(self, dataset):
        pairs, report = stps_join(
            dataset, EPS_LOC, EPS_DOC, EPS_USER, with_report=True
        )
        assert report.dataset_fingerprint == dataset.fingerprint()
        assert f"dataset {dataset.fingerprint()}" in report.summary()

    def test_warm_indexes_are_shared(self, service):
        prepared = service.registry.get("demo")
        index_a = prepared.grid_index(EPS_LOC)
        index_b = prepared.grid_index(EPS_LOC)
        assert index_a is index_b
        assert prepared.index_stats()["grid_indexes"] == 1
