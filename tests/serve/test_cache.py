"""LRU result-cache semantics, including concurrent correctness."""

from __future__ import annotations

import threading

import pytest

from repro.serve import ResultCache


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        hit, value = cache.get("a")
        assert not hit and value is None
        cache.put("a", {"pairs": [1, 2]})
        hit, value = cache.get("a")
        assert hit and value == {"pairs": [1, 2]}

    def test_none_values_are_cacheable(self):
        cache = ResultCache(capacity=4)
        cache.put("a", None)
        hit, value = cache.get("a")
        assert hit and value is None

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("a")[0]
        assert not cache.get("b")[0]
        assert cache.get("c")[0]
        assert cache.stats().evictions == 1

    def test_put_existing_key_updates_without_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert cache.get("a") == (True, 10)
        assert cache.stats().evictions == 0
        assert len(cache) == 2

    def test_capacity_zero_disables_caching(self):
        cache = ResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") == (False, None)
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_stats_counts(self):
        cache = ResultCache(capacity=2)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.as_dict()["capacity"] == 2

    def test_concurrent_hit_miss_correctness(self):
        """Hammered from many threads, a hit only ever sees the value
        stored under exactly that key — no torn or cross-key reads."""
        cache = ResultCache(capacity=8)
        errors = []
        barrier = threading.Barrier(6)

        def worker(worker_id: int) -> None:
            barrier.wait()
            for i in range(500):
                key = i % 16
                hit, value = cache.get(key)
                if hit and value != ("payload", key):
                    errors.append((worker_id, key, value))
                cache.put(key, ("payload", key))

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats.hits + stats.misses == 6 * 500
        assert len(cache) <= 8
