"""Audit log: ring eviction, JSONL rotation, concurrency, slow-query log.

The load-bearing guarantee: under concurrent writers the JSONL file
never contains torn or interleaved lines — every line parses and every
record survives exactly once (in the file set; the ring is bounded).
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.serve.audit import (
    AUDIT_SCHEMA_VERSION,
    AuditLog,
    AuditRecord,
    SlowQueryLog,
    read_audit_lines,
)


def _record(dataset="demo", outcome="ok", **extra):
    return AuditRecord(dataset=dataset, query_type="join",
                       algorithm="s-ppj-f", outcome=outcome, **extra)


class TestAuditRecord:
    def test_as_dict_schema(self):
        payload = _record(seconds=0.5).as_dict()
        assert payload["schema_version"] == AUDIT_SCHEMA_VERSION
        assert payload["dataset"] == "demo"
        assert payload["type"] == "join"
        assert payload["seconds"] == 0.5
        for field in ("seq", "ts", "outcome", "timings", "params",
                      "funnel", "calibration", "run_id", "cache"):
            assert field in payload

    def test_round_trips_through_json(self):
        payload = _record(timings={"queue": 0.001}).as_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestRingBuffer:
    def test_sequence_numbers_assigned(self):
        log = AuditLog(maxlen=8)
        first = log.record(_record())
        second = log.record(_record())
        assert (first.seq, second.seq) == (1, 2)
        assert first.ts > 0

    def test_eviction_keeps_newest(self):
        log = AuditLog(maxlen=3)
        for _ in range(10):
            log.record(_record())
        tail = log.tail(n=-1)
        assert [r["seq"] for r in tail] == [8, 9, 10]
        stats = log.stats()
        assert stats["recorded"] == 10
        assert stats["ring_size"] == 3
        assert stats["evicted"] == 7

    def test_tail_filters(self):
        log = AuditLog(maxlen=16)
        log.record(_record(dataset="a"))
        log.record(_record(dataset="b", outcome="error"))
        log.record(_record(dataset="a", outcome="deadline"))
        assert len(log.tail(dataset="a")) == 2
        assert len(log.tail(outcome="error")) == 1
        assert len(log.tail(since_seq=2)) == 1
        assert [r["seq"] for r in log.tail(n=2)] == [2, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            AuditLog(maxlen=0)
        with pytest.raises(ValueError):
            AuditLog(max_bytes=10)
        with pytest.raises(ValueError):
            AuditLog(backups=-1)


class TestJsonlFile:
    def test_records_appended_as_jsonl(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        log = AuditLog(maxlen=4, path=path)
        for _ in range(6):
            log.record(_record())
        log.close()
        lines = list(read_audit_lines(path))
        # The file keeps everything even after the ring evicted records.
        assert [r["seq"] for r in lines] == [1, 2, 3, 4, 5, 6]
        assert all(r["schema_version"] == AUDIT_SCHEMA_VERSION for r in lines)

    def test_reopen_appends(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        log = AuditLog(path=path)
        log.record(_record())
        log.close()
        log = AuditLog(path=path)
        log.record(_record())
        log.close()
        assert len(list(read_audit_lines(path))) == 2

    def test_rotation(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        log = AuditLog(maxlen=4, path=path, max_bytes=1024, backups=2)
        for _ in range(64):
            log.record(_record())
        log.close()
        assert log.stats()["rotations"] >= 2
        assert os.path.exists(f"{path}.1")
        assert os.path.exists(f"{path}.2")
        assert not os.path.exists(f"{path}.3")  # oldest dropped
        # Every surviving file parses line by line; sequences ascend
        # across the rotation chain (oldest backup first).
        seqs = []
        for name in (f"{path}.2", f"{path}.1", path):
            seqs.extend(r["seq"] for r in read_audit_lines(name))
        assert seqs == sorted(seqs)
        assert seqs[-1] == 64

    def test_rotation_without_backups_truncates(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        log = AuditLog(path=path, max_bytes=1024, backups=0)
        for _ in range(64):
            log.record(_record())
        log.close()
        assert not os.path.exists(f"{path}.1")
        records = list(read_audit_lines(path))
        assert records  # latest generation retained
        assert records[-1]["seq"] == 64

    def test_torn_final_line_skipped(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        log = AuditLog(path=path)
        log.record(_record())
        log.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "truncated')  # no newline: torn
        records = list(read_audit_lines(path))
        assert [r["seq"] for r in records] == [1]


class TestConcurrency:
    def test_hammer_no_lost_or_torn_lines(self, tmp_path):
        """16 threads x 50 records: every line parses, none lost."""
        path = str(tmp_path / "audit.jsonl")
        # max_bytes small enough to force many rotations mid-hammer,
        # backups large enough that no generation is dropped — so every
        # record must survive somewhere in the chain.
        log = AuditLog(maxlen=32, path=path, max_bytes=16 * 1024, backups=30)
        threads, per_thread = 16, 50
        barrier = threading.Barrier(threads)

        def hammer(worker: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                log.record(_record(dataset=f"w{worker}",
                                   timings={"execute": i * 1e-6}))

        pool = [
            threading.Thread(target=hammer, args=(w,)) for w in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        log.close()

        total = threads * per_thread
        stats = log.stats()
        assert stats["recorded"] == total
        assert stats["ring_size"] == 32
        assert stats["evicted"] == total - 32

        assert log.stats()["rotations"] > 2  # rotation actually ran

        # Collect every line across the rotation chain: all parse (no
        # torn/interleaved writes) and every seq 1..total appears once.
        seqs = []
        for suffix in [f".{i}" for i in range(30, 0, -1)] + [""]:
            name = path + suffix
            if os.path.exists(name):
                for record in read_audit_lines(name):
                    seqs.append(record["seq"])
        assert sorted(seqs) == list(range(1, total + 1))

    def test_ring_tail_consistent_under_writes(self):
        log = AuditLog(maxlen=64)
        stop = threading.Event()

        def writer() -> None:
            while not stop.is_set():
                log.record(_record())

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                tail = log.tail(n=-1)
                seqs = [r["seq"] for r in tail]
                assert seqs == sorted(seqs)
                assert len(seqs) <= 64
        finally:
            stop.set()
            thread.join()


class TestSlowQueryLog:
    def test_threshold(self):
        slow = SlowQueryLog(threshold_seconds=0.5)
        assert not slow.is_slow(0.4)
        assert slow.is_slow(0.5)

    def test_entries_bounded(self):
        slow = SlowQueryLog(threshold_seconds=0.1, maxlen=2)
        for i in range(5):
            slow.add(_record(seconds=float(i)), explain=None)
        entries = slow.entries()
        assert len(entries) == 2
        assert entries[-1]["record"]["seconds"] == 4.0
        assert slow.stats()["captured"] == 5

    def test_explain_and_recaptured_flag(self):
        slow = SlowQueryLog(threshold_seconds=0.1)
        slow.add(_record(), explain={"kind": "explain"}, recaptured=True)
        (entry,) = slow.entries()
        assert entry["explain"]["kind"] == "explain"
        assert entry["recaptured"] is True

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_seconds=0)
        with pytest.raises(ValueError):
            SlowQueryLog(maxlen=0)
