"""Admission control: bounded concurrency, overload rejection, draining."""

from __future__ import annotations

import threading

import pytest

from repro.serve import AdmissionController, AdmissionRejected


def _hold_slots(controller: AdmissionController, n: int):
    """Occupy ``n`` in-flight slots from worker threads; returns
    (release_event, started_barrier-joined threads)."""
    release = threading.Event()
    holding = threading.Barrier(n + 1)

    def hold() -> None:
        with controller.admit():
            holding.wait()
            release.wait(timeout=10)

    threads = [threading.Thread(target=hold) for _ in range(n)]
    for t in threads:
        t.start()
    holding.wait(timeout=10)
    return release, threads


class TestAdmissionController:
    def test_admits_up_to_max_inflight(self):
        controller = AdmissionController(max_inflight=3, max_queue=0)
        release, threads = _hold_slots(controller, 3)
        assert controller.stats()["inflight"] == 3
        release.set()
        for t in threads:
            t.join()
        assert controller.stats()["inflight"] == 0

    def test_rejects_beyond_queue(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        release, threads = _hold_slots(controller, 1)
        with pytest.raises(AdmissionRejected) as exc_info:
            controller.admit()
        assert exc_info.value.retry_after is not None
        assert controller.stats()["rejected"] == 1
        release.set()
        for t in threads:
            t.join()

    def test_queued_request_runs_after_release(self):
        controller = AdmissionController(max_inflight=1, max_queue=1)
        release, threads = _hold_slots(controller, 1)
        ran = threading.Event()

        def queued() -> None:
            with controller.admit():
                ran.set()

        waiter = threading.Thread(target=queued)
        waiter.start()
        # The waiter is queued, not rejected, and not yet running.
        for _ in range(100):
            if controller.stats()["waiting"] == 1:
                break
            threading.Event().wait(0.01)
        assert not ran.is_set()
        release.set()
        waiter.join(timeout=10)
        assert ran.is_set()
        for t in threads:
            t.join()

    def test_rejection_under_concurrent_load(self):
        """With 2 slots, no queue and 12 threads, exactly the excess is
        rejected and the in-flight bound is never violated."""
        controller = AdmissionController(max_inflight=2, max_queue=0)
        peak = []
        outcomes = []
        lock = threading.Lock()
        barrier = threading.Barrier(12)

        def worker() -> None:
            barrier.wait()
            try:
                with controller.admit():
                    with lock:
                        peak.append(controller.stats()["inflight"])
                    threading.Event().wait(0.05)
                outcome = "ok"
            except AdmissionRejected:
                outcome = "rejected"
            with lock:
                outcomes.append(outcome)

        threads = [threading.Thread(target=worker) for _ in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert max(peak) <= 2
        assert outcomes.count("ok") >= 2
        assert outcomes.count("rejected") >= 1
        assert len(outcomes) == 12
        stats = controller.stats()
        assert stats["admitted"] == outcomes.count("ok")
        assert stats["rejected"] == outcomes.count("rejected")

    def test_drain_rejects_new_arrivals(self):
        controller = AdmissionController(max_inflight=2, max_queue=4)
        controller.drain()
        with pytest.raises(AdmissionRejected) as exc_info:
            controller.admit()
        assert exc_info.value.retry_after is None
        assert controller.draining

    def test_drain_wakes_queued_waiters(self):
        controller = AdmissionController(max_inflight=1, max_queue=2)
        release, threads = _hold_slots(controller, 1)
        result = {}

        def queued() -> None:
            try:
                with controller.admit():
                    result["outcome"] = "admitted"
            except AdmissionRejected:
                result["outcome"] = "rejected"

        waiter = threading.Thread(target=queued)
        waiter.start()
        for _ in range(100):
            if controller.stats()["waiting"] == 1:
                break
            threading.Event().wait(0.01)
        controller.drain()
        waiter.join(timeout=10)
        assert result["outcome"] == "rejected"
        release.set()
        for t in threads:
            t.join()

    def test_wait_idle(self):
        controller = AdmissionController(max_inflight=2, max_queue=0)
        release, threads = _hold_slots(controller, 2)
        assert not controller.wait_idle(timeout=0.05)
        release.set()
        assert controller.wait_idle(timeout=10)
        for t in threads:
            t.join()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=1, max_queue=-1)
