"""HTTP front end: endpoints, status mapping, metrics, graceful shutdown."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import stps_join
from repro.datasets.loaders import save_tsv
from repro.serve import (
    JoinHTTPServer,
    JoinService,
    ServeClient,
    ServerError,
    serve_forever,
)
from tests.helpers import build_clustered_dataset

EPS_LOC, EPS_DOC, EPS_USER = 0.05, 0.3, 0.2


@pytest.fixture(scope="module")
def dataset():
    return build_clustered_dataset(seed=11, n_users=10, objects_per_user=5)


@pytest.fixture()
def served(dataset):
    """A running server on a free port; yields (client, server, service)."""
    service = JoinService(cache_capacity=32, max_inflight=1, max_queue=0)
    service.register_dataset("demo", dataset)
    server = JoinHTTPServer(("127.0.0.1", 0), service, drain_timeout=2.0)
    thread = threading.Thread(
        target=serve_forever, args=(server, False), daemon=True
    )
    thread.start()
    client = ServeClient(f"http://127.0.0.1:{server.port}", timeout=10.0)
    try:
        yield client, server, service
    finally:
        server.initiate_shutdown()
        thread.join(timeout=10)


class TestEndpoints:
    def test_health(self, served):
        client, _, _ = served
        health = client.health()
        assert health["status"] == "ok"
        assert health["datasets"] == ["demo"]
        assert health["admission"]["max_inflight"] == 1

    def test_datasets_listing(self, served, dataset):
        client, _, _ = served
        listing = client.datasets()
        assert listing[0]["name"] == "demo"
        assert listing[0]["fingerprint"] == dataset.fingerprint()

    def test_register_over_http(self, served, tmp_path):
        client, _, _ = served
        extra = build_clustered_dataset(seed=3, n_users=6, objects_per_user=4)
        path = tmp_path / "extra.tsv"
        save_tsv(extra, str(path))
        described = client.register("extra", str(path))
        # The TSV round-trip stringifies user ids, so compare against
        # the content the server actually loaded.
        from repro.datasets.loaders import load_tsv

        assert described["fingerprint"] == load_tsv(str(path)).fingerprint()
        assert sorted(d["name"] for d in client.datasets()) == ["demo", "extra"]

    def test_join_matches_direct(self, served, dataset):
        client, _, _ = served
        response = client.join("demo", EPS_LOC, EPS_DOC, EPS_USER)
        direct = stps_join(dataset, EPS_LOC, EPS_DOC, EPS_USER)
        assert json.dumps(response["pairs"]) == json.dumps(
            [[p.user_a, p.user_b, p.score] for p in direct]
        )
        again = client.join("demo", EPS_LOC, EPS_DOC, EPS_USER)
        assert again["cached"] is True
        assert again["pairs"] == response["pairs"]

    def test_metrics_exposition(self, served):
        client, _, _ = served
        client.join("demo", EPS_LOC, EPS_DOC, EPS_USER)
        text = client.metrics()
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_cache_size" in text
        assert "repro_serve_request_seconds_bucket" in text


class TestErrorMapping:
    def test_unknown_endpoint_404(self, served):
        client, _, _ = served
        with pytest.raises(ServerError) as exc_info:
            client._request("GET", "/nope")
        assert exc_info.value.status == 404

    def test_unknown_dataset_404(self, served):
        client, _, _ = served
        with pytest.raises(ServerError) as exc_info:
            client.join("ghost", EPS_LOC, EPS_DOC, EPS_USER)
        assert exc_info.value.status == 404

    def test_bad_request_400(self, served):
        client, _, _ = served
        with pytest.raises(ServerError) as exc_info:
            client.query({"type": "join", "dataset": "demo",
                          "eps_loc": "wide", "eps_doc": 1, "eps_user": 1})
        assert exc_info.value.status == 400

    def test_invalid_json_400(self, served):
        client, _, _ = served
        request = urllib.request.Request(
            client.base_url + "/query",
            data=b"this is not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=10)
        assert exc_info.value.code == 400

    def test_register_missing_file_400(self, served):
        client, _, _ = served
        with pytest.raises(ServerError) as exc_info:
            client.register("ghost", "/nonexistent/path.tsv")
        assert exc_info.value.status == 400

    def test_saturated_server_429_with_retry_after(self, served):
        client, _, service = served
        slot = service.admission.admit()  # occupy the single slot
        try:
            request = urllib.request.Request(
                client.base_url + "/query",
                data=json.dumps(
                    {"type": "join", "dataset": "demo", "no_cache": True,
                     "eps_loc": EPS_LOC, "eps_doc": EPS_DOC,
                     "eps_user": EPS_USER}
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(request, timeout=10)
            assert exc_info.value.code == 429
            assert exc_info.value.headers.get("Retry-After") is not None
        finally:
            slot.release()


class TestGracefulShutdown:
    def test_shutdown_endpoint_drains_and_stops(self, dataset):
        service = JoinService(cache_capacity=8)
        service.register_dataset("demo", dataset)
        server = JoinHTTPServer(("127.0.0.1", 0), service, drain_timeout=2.0)
        thread = threading.Thread(
            target=serve_forever, args=(server, False), daemon=True
        )
        thread.start()
        client = ServeClient(f"http://127.0.0.1:{server.port}", timeout=10.0)
        assert client.health()["status"] == "ok"
        assert client.shutdown() == {"status": "draining"}
        thread.join(timeout=10)
        assert not thread.is_alive()
        with pytest.raises((ServerError, OSError)):
            client.health()

    def test_draining_rejects_new_queries(self, dataset):
        service = JoinService(cache_capacity=8)
        service.register_dataset("demo", dataset)
        server = JoinHTTPServer(("127.0.0.1", 0), service, drain_timeout=2.0)
        thread = threading.Thread(
            target=serve_forever, args=(server, False), daemon=True
        )
        thread.start()
        client = ServeClient(f"http://127.0.0.1:{server.port}", timeout=10.0)
        # Hold a slot so the drain thread keeps the server up briefly.
        slot = service.admission.admit()
        try:
            server.initiate_shutdown()
            with pytest.raises(ServerError) as exc_info:
                client.join("demo", EPS_LOC, EPS_DOC, EPS_USER,
                            no_cache=True)
            assert exc_info.value.status == 503
        finally:
            slot.release()
        thread.join(timeout=10)
        assert not thread.is_alive()
