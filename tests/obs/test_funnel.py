"""Funnel counter conservation: every pair lands in exactly one stage.

The EXPLAIN funnel (``docs/observability.md``) rests on two invariants
the kernels must uphold no matter which filters fire:

* ``funnel.object_pairs == sum(funnel.pruned.*) + funnel.verified`` —
  every candidate object pair is either pruned by exactly one admissible
  filter or reaches exact verification;
* ``funnel.verified == funnel.verify_failed + funnel.matched`` — every
  verified pair either matched or failed the exact test.

Both must hold per algorithm, per backend, and under fault-injection
retries, because the funnel is assembled from the same merge-on-accept
registries the determinism tests pin down.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro import Telemetry
from repro.core.query import STPSJoinQuery, TopKQuery
from repro.exec import ExecutionPolicy, JoinExecutor
from repro.exec import faults
from repro.obs import MetricsRegistry, PRUNE_STAGES, flush_funnel
from repro.obs import runtime as _obs
from repro.textual.ppjoin import similarity_rs_join, similarity_self_join
from tests.helpers import build_random_dataset

#: Algorithms routed through the instrumented pair-evaluation kernels.
#: "naive" compares objects without the shared kernels and records no
#: funnel, which TestNaiveRecordsNoFunnel pins down explicitly.
FUNNEL_JOIN_ALGOS = ["s-ppj-c", "s-ppj-b", "s-ppj-f", "s-ppj-d"]
TOPK_ALGOS = ["topk-s-ppj-p", "topk-s-ppj-d"]

fork_available = "fork" in multiprocessing.get_all_start_methods()

CHUNK = 5


@pytest.fixture(scope="module")
def dataset():
    return build_random_dataset(7, n_users=40)


@pytest.fixture(scope="module")
def join_query():
    return STPSJoinQuery(eps_loc=0.05, eps_doc=0.2, eps_user=0.2)


@pytest.fixture(scope="module")
def topk_query():
    return TopKQuery(eps_loc=0.05, eps_doc=0.2, k=7)


def _counters(dataset, query, algorithm, backend="sequential", workers=1,
              topk=False, **kwargs):
    tele = Telemetry()
    executor = JoinExecutor(
        workers=workers, backend=backend, chunk_size=CHUNK, **kwargs
    )
    run = executor.topk if topk else executor.join
    run(dataset, query, algorithm=algorithm, telemetry=tele)
    return tele.work_counters()


def assert_conserved(counters):
    funnel = {k: v for k, v in counters.items() if k.startswith("funnel.")}
    assert funnel, "no funnel counters recorded"
    pruned = sum(
        v for k, v in funnel.items() if k.startswith("funnel.pruned.")
    )
    assert funnel["funnel.object_pairs"] == pruned + funnel.get(
        "funnel.verified", 0
    )
    assert funnel.get("funnel.verified", 0) == funnel.get(
        "funnel.verify_failed", 0
    ) + funnel.get("funnel.matched", 0)
    # Unknown stage names would silently break the conservation sums.
    stages = {
        k[len("funnel.pruned."):]
        for k in funnel
        if k.startswith("funnel.pruned.")
    }
    assert stages <= set(PRUNE_STAGES)


class TestJoinConservation:
    @pytest.mark.parametrize("algorithm", FUNNEL_JOIN_ALGOS)
    @pytest.mark.parametrize("backend,workers", [("sequential", 1), ("thread", 3)])
    def test_conserved(self, dataset, join_query, algorithm, backend, workers):
        assert_conserved(
            _counters(dataset, join_query, algorithm, backend, workers)
        )

    @pytest.mark.skipif(not fork_available, reason="fork start method unavailable")
    def test_conserved_process_backend(self, dataset, join_query):
        assert_conserved(
            _counters(
                dataset, join_query, "s-ppj-b", "process", 3,
                start_method="fork",
            )
        )

    @pytest.mark.parametrize("algorithm", FUNNEL_JOIN_ALGOS)
    def test_funnel_agrees_with_legacy_stats(
        self, dataset, join_query, algorithm
    ):
        """The funnel re-counts what PairEvalStats already counted."""
        counters = _counters(dataset, join_query, algorithm)
        assert counters["funnel.cell_pairs"] == counters["filter.cell_joins"]
        assert (
            counters["funnel.object_pairs"] == counters["filter.object_pairs"]
        )

    def test_conserved_under_faulty_retries(self, dataset, join_query):
        clean = _counters(dataset, join_query, "s-ppj-b")
        policy = ExecutionPolicy(
            max_retries=2, backoff_base=0.0, backoff_jitter=0.0
        )
        faults.install_fault_plan(faults.FaultPlan.parse("error@0*2"))
        try:
            faulty = _counters(
                dataset, join_query, "s-ppj-b", policy=policy
            )
        finally:
            faults.install_fault_plan(None)
        assert_conserved(faulty)
        assert faulty == clean


class TestTopkConservation:
    @pytest.mark.parametrize("algorithm", TOPK_ALGOS)
    def test_conserved(self, dataset, topk_query, algorithm):
        counters = _counters(
            dataset, topk_query, algorithm, topk=True
        )
        assert_conserved(counters)
        assert counters["funnel.cell_pairs"] == counters["filter.cell_joins"]


class TestNaiveRecordsNoFunnel:
    def test_no_funnel_counters(self, dataset, join_query):
        counters = _counters(dataset, join_query, "naive")
        assert not any(k.startswith("funnel.") for k in counters)


class TestStandalonePPJoin:
    """The textual kernels uphold conservation outside the engine too."""

    DOCS = [
        (1, 2, 3, 4),
        (2, 3, 4, 5),
        (),  # empty records are pruned by the "empty" stage
        (1, 2),
        (6, 7, 8),
        (1, 2, 3, 4, 5),
        (),
        (9,),
    ]

    def _run(self, fn, *args, **kwargs):
        reg = MetricsRegistry()
        previous = _obs.activate(reg)
        try:
            results = fn(*args, **kwargs)
        finally:
            _obs.restore(previous)
        return results, reg.counter_values()

    def test_self_join_conserved(self):
        results, counters = self._run(
            similarity_self_join, self.DOCS, 0.3, suffix=True
        )
        assert_conserved(counters)
        n = len(self.DOCS)
        assert counters["funnel.object_pairs"] == n * (n - 1) // 2
        assert counters["funnel.matched"] == len(results)

    def test_rs_join_conserved(self):
        probe = self.DOCS
        index = [(1, 2, 3), (4, 5), (), (2, 3, 4, 5, 6)]
        results, counters = self._run(
            similarity_rs_join, probe, index, 0.3
        )
        assert_conserved(counters)
        assert counters["funnel.object_pairs"] == len(probe) * len(index)
        assert counters["funnel.matched"] == len(results)

    def test_self_join_predicate_charged_to_predicate_stage(self):
        _, counters = self._run(
            similarity_self_join, self.DOCS, 0.3,
            pair_predicate=lambda i, j: False,
        )
        assert counters.get("funnel.pruned.predicate", 0) > 0
        assert counters.get("funnel.matched", 0) == 0
        assert_conserved(counters)


class TestFlushFunnel:
    def test_zero_stages_not_materialized(self):
        reg = MetricsRegistry()
        flush_funnel(reg, 10, spatial=4, verified=6, matched=2)
        counters = reg.counter_values()
        assert counters == {
            "funnel.object_pairs": 10,
            "funnel.pruned.spatial": 4,
            "funnel.verified": 6,
            "funnel.verify_failed": 4,
            "funnel.matched": 2,
        }

    def test_verify_failed_is_derived(self):
        reg = MetricsRegistry()
        flush_funnel(reg, 3, verified=3, matched=3)
        counters = reg.counter_values()
        assert "funnel.verify_failed" not in counters
        assert counters["funnel.matched"] == 3
