"""Sliding-window analytics: aggregation, SLO judgment, calibration."""

from __future__ import annotations

import pytest

from repro.obs import Histogram
from repro.obs.analytics import (
    OUTCOMES,
    SLOPolicy,
    WindowAggregator,
    calibration_summary,
)


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def window(clock):
    return WindowAggregator(bucket_seconds=10.0, num_buckets=3, clock=clock)


class TestWindowAggregator:
    def test_empty_snapshot(self, window):
        snap = window.snapshot()
        assert snap["window_seconds"] == 30.0
        assert snap["groups"] == []
        assert snap["totals"]["count"] == 0
        assert snap["totals"]["qps"] == 0.0

    def test_groups_by_dataset_and_algorithm(self, window):
        window.record("a", "s-ppj-f", 0.010)
        window.record("a", "s-ppj-f", 0.020)
        window.record("a", "s-ppj-c", 0.005)
        window.record("b", "s-ppj-f", 0.001)
        snap = window.snapshot()
        keys = [(g["dataset"], g["algorithm"]) for g in snap["groups"]]
        assert keys == [("a", "s-ppj-c"), ("a", "s-ppj-f"), ("b", "s-ppj-f")]
        by_key = {k: g for k, g in zip(keys, snap["groups"])}
        assert by_key[("a", "s-ppj-f")]["count"] == 2
        assert snap["totals"]["count"] == 4
        assert snap["totals"]["qps"] == pytest.approx(4 / 30.0)

    def test_outcome_and_cache_rates(self, window):
        window.record("a", "x", 0.01, outcome="ok", cache="hit")
        window.record("a", "x", 0.01, outcome="ok", cache="miss")
        window.record("a", "x", 0.01, outcome="error")
        window.record("a", "x", 0.01, outcome="deadline")
        window.record("a", "x", 0.01, outcome="rejected")
        window.record("a", "x", 0.01, outcome="bad_request")
        (group,) = window.snapshot()["groups"]
        assert group["count"] == 6
        assert group["ok"] == 2
        assert group["errors"] == 2  # error + bad_request
        assert group["timeouts"] == 1
        assert group["rejected"] == 1
        assert group["error_rate"] == pytest.approx(2 / 6)
        assert group["timeout_rate"] == pytest.approx(1 / 6)
        assert group["cache_hit_ratio"] == pytest.approx(0.5)

    def test_unknown_outcome_rejected(self, window):
        with pytest.raises(ValueError, match="unknown outcome"):
            window.record("a", "x", 0.01, outcome="exploded")
        assert "exploded" not in OUTCOMES

    def test_old_buckets_evicted(self, window, clock):
        window.record("a", "x", 0.01)
        clock.advance(10.0)
        window.record("a", "x", 0.01)
        assert window.snapshot()["totals"]["count"] == 2
        # First bucket falls out of the 3-bucket window, second survives.
        clock.advance(20.0)
        assert window.snapshot()["totals"]["count"] == 1
        clock.advance(10.0)
        assert window.snapshot()["totals"]["count"] == 0
        assert window.snapshot()["groups"] == []

    def test_quantiles_carry_bounds(self, window):
        for ms in (1, 2, 5, 10, 100):
            window.record("a", "x", ms / 1000.0)
        (group,) = window.snapshot()["groups"]
        p99 = group["latency"]["p99"]
        assert set(p99) == {"q", "estimate", "lower", "upper"}
        assert p99["lower"] <= p99["estimate"] <= p99["upper"]
        # Exact extrema tracked alongside the bucketed estimate.
        assert group["latency"]["min"] == pytest.approx(0.001)
        assert group["latency"]["max"] == pytest.approx(0.1)
        assert p99["upper"] <= group["latency"]["max"] + 1e-12

    def test_merge_preserves_exact_extrema(self, window, clock):
        window.record("a", "x", 0.003)
        clock.advance(10.0)
        window.record("a", "x", 0.250)
        (group,) = window.snapshot()["groups"]
        assert group["latency"]["min"] == pytest.approx(0.003)
        assert group["latency"]["max"] == pytest.approx(0.250)

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowAggregator(bucket_seconds=0)
        with pytest.raises(ValueError):
            WindowAggregator(num_buckets=0)


class TestHistogramQuantile:
    def test_bounds_bracket_estimate(self):
        hist = Histogram()
        for value in (0.001, 0.004, 0.02, 0.3, 1.5):
            hist.observe(value)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            result = hist.quantile(q)
            assert result["lower"] <= result["estimate"] <= result["upper"]
            assert result["lower"] >= 0.001 - 1e-12
            assert result["upper"] <= 1.5 + 1e-12

    def test_single_observation_is_exact(self):
        hist = Histogram()
        hist.observe(0.037)
        result = hist.quantile(0.5)
        assert result["lower"] == pytest.approx(0.037)
        assert result["upper"] == pytest.approx(0.037)
        assert result["estimate"] == pytest.approx(0.037)

    def test_empty_histogram(self):
        result = Histogram().quantile(0.99)
        assert result["estimate"] == 0.0
        assert result["lower"] == 0.0
        assert result["upper"] == 0.0

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)


class TestSLOPolicy:
    def _snapshot(self, **cell):
        base = {
            "count": 10,
            "error_rate": 0.0,
            "timeout_rate": 0.0,
            "latency": {"p99": {"q": 0.99, "estimate": 0.01,
                                "lower": 0.0, "upper": 0.02}},
        }
        base.update(cell)
        return {"groups": [{"dataset": "d", "algorithm": "a", **base}]}

    def test_unconfigured_never_breaches(self):
        policy = SLOPolicy()
        assert not policy.configured
        assert policy.breaches(self._snapshot(error_rate=1.0)) == []

    def test_p99_breach(self):
        policy = SLOPolicy(p99_seconds=0.005)
        (breach,) = policy.breaches(self._snapshot())
        assert breach["metric"] == "p99_seconds"
        assert breach["value"] == pytest.approx(0.01)
        assert breach["dataset"] == "d"

    def test_error_and_timeout_rate_breaches(self):
        policy = SLOPolicy(error_rate=0.1, timeout_rate=0.1)
        snapshot = self._snapshot(error_rate=0.5, timeout_rate=0.2)
        metrics = {b["metric"] for b in policy.breaches(snapshot)}
        assert metrics == {"error_rate", "timeout_rate"}

    def test_min_count_suppresses(self):
        policy = SLOPolicy(error_rate=0.1, min_count=100)
        assert policy.breaches(self._snapshot(error_rate=1.0)) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            SLOPolicy(p99_seconds=-1)
        with pytest.raises(ValueError):
            SLOPolicy(min_count=0)


class TestCalibrationSummary:
    def test_perfect_model(self):
        costs = {0: 10.0, 1: 20.0, 2: 30.0}
        seconds = {0: 0.1, 1: 0.2, 2: 0.3}
        summary = calibration_summary(costs, seconds)
        assert summary["chunks"] == 3
        assert summary["ratio_min"] == pytest.approx(1.0)
        assert summary["ratio_median"] == pytest.approx(1.0)
        assert summary["ratio_max"] == pytest.approx(1.0)
        assert summary["seconds_per_cost"] == pytest.approx(0.01)

    def test_worst_chunk_identified(self):
        costs = {0: 10.0, 1: 10.0}
        seconds = {0: 0.1, 1: 0.3}  # chunk 1 took 3x its predicted share
        summary = calibration_summary(costs, seconds)
        assert summary["worst_chunk"]["chunk"] == 1
        assert summary["worst_chunk"]["ratio"] == pytest.approx(1.5)
        assert summary["ratio_min"] == pytest.approx(0.5)

    def test_only_common_chunks_compared(self):
        summary = calibration_summary({0: 1.0, 1: 1.0}, {1: 0.5, 2: 0.5})
        assert summary["chunks"] == 1

    def test_empty_inputs(self):
        assert calibration_summary({}, {}) == {"chunks": 0}
        assert calibration_summary({0: 1.0}, {}) == {"chunks": 0}
        assert calibration_summary({0: 0.0}, {0: 0.1}) == {"chunks": 0}
