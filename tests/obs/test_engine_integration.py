"""Engine-level telemetry integration: spans, report timings, API plumbing."""

from __future__ import annotations

import pytest

from repro import Telemetry, stps_join, topk_stps_join
from repro.core.query import STPSJoinQuery
from repro.exec import JoinExecutor
from tests.helpers import build_random_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_random_dataset(11, n_users=30)


@pytest.fixture(scope="module")
def query():
    return STPSJoinQuery(eps_loc=0.05, eps_doc=0.2, eps_user=0.2)


class TestReportTimings:
    def test_fast_path_populates_chunk_timings(self, dataset, query):
        executor = JoinExecutor(workers=1, backend="sequential", chunk_size=5)
        _, report = executor.join(
            dataset, query, algorithm="s-ppj-b", with_report=True
        )
        assert report.chunks_completed > 0
        assert len(report.chunk_seconds) == report.chunks_completed
        assert len(report.chunk_attempts) == report.chunks_completed
        assert all(s >= 0.0 for s in report.chunk_seconds.values())
        assert set(report.chunk_attempts.values()) == {1}

    def test_summary_reports_chunk_wall_clock(self, dataset, query):
        executor = JoinExecutor(workers=1, backend="sequential", chunk_size=5)
        _, report = executor.join(
            dataset, query, algorithm="s-ppj-b", with_report=True
        )
        assert "chunk wall" in report.summary()
        assert "(min/med/max)" in report.summary()

    def test_empty_report_summary_omits_chunk_wall(self):
        from repro.exec import ExecutionReport

        assert "chunk wall" not in ExecutionReport().summary()


class TestTraceSpans:
    def test_run_setup_and_chunk_spans(self, dataset, query):
        tele = Telemetry()
        executor = JoinExecutor(workers=1, backend="sequential", chunk_size=5)
        _, report = executor.join(
            dataset, query, algorithm="s-ppj-f",
            telemetry=tele, with_report=True,
        )
        by_name = {}
        for span in tele.tracer.spans:
            by_name.setdefault(span.name, []).append(span)
        assert len(by_name["run"]) == 1
        assert len(by_name["setup"]) == 1
        assert len(by_name["chunk"]) == report.chunks_completed

        run = by_name["run"][0]
        assert run.run_id == "join-0001"
        assert run.attrs["algorithm"] == "join:s-ppj-f"
        assert run.attrs["chunks_total"] == report.chunks_total
        assert run.finish is not None
        for chunk in by_name["chunk"]:
            assert chunk.parent_id == run.span_id
            assert chunk.attrs["attempts"] == 1

    def test_successive_runs_get_successive_run_ids(self, dataset, query):
        tele = Telemetry()
        executor = JoinExecutor(workers=1, backend="sequential", chunk_size=5)
        executor.join(dataset, query, algorithm="s-ppj-b", telemetry=tele)
        executor.join(dataset, query, algorithm="s-ppj-b", telemetry=tele)
        run_ids = [s.run_id for s in tele.tracer.spans if s.name == "run"]
        assert run_ids == ["join-0001", "join-0002"]


class TestPhaseMetrics:
    def test_index_build_phase_recorded_for_leaf_algorithms(
        self, dataset, query
    ):
        tele = Telemetry()
        executor = JoinExecutor(workers=1, backend="sequential", chunk_size=5)
        executor.join(dataset, query, algorithm="s-ppj-d", telemetry=tele)
        histograms = tele.metrics.histogram_items()
        assert "phase.index.build.leaf" in histograms
        assert "phase.candidates" in histograms
        assert "setup.seconds" in histograms

    def test_ppjoin_counters_recorded(self, dataset, query):
        tele = Telemetry()
        executor = JoinExecutor(workers=1, backend="sequential", chunk_size=5)
        executor.join(dataset, query, algorithm="s-ppj-b", telemetry=tele)
        counters = tele.metrics.counter_values()
        assert counters.get("pairs.emitted", 0) >= 0
        assert "engine.runs" in counters
        assert counters["engine.chunks_total"] == counters["engine.chunks_completed"]


class TestApiPlumbing:
    def test_with_telemetry_appends_to_return(self, dataset):
        pairs, tele = stps_join(
            dataset, 0.05, 0.2, 0.2, with_telemetry=True
        )
        assert isinstance(pairs, list)
        assert isinstance(tele, Telemetry)
        assert tele.work_counters()

    def test_with_report_and_telemetry_order(self, dataset):
        pairs, report, tele = stps_join(
            dataset, 0.05, 0.2, 0.2, with_report=True, with_telemetry=True
        )
        assert isinstance(pairs, list)
        assert report.chunks_completed > 0
        assert isinstance(tele, Telemetry)

    def test_explicit_telemetry_is_passed_through(self, dataset):
        tele = Telemetry()
        result = stps_join(dataset, 0.05, 0.2, 0.2, telemetry=tele)
        assert isinstance(result, list)
        assert tele.work_counters()

    def test_topk_with_telemetry(self, dataset):
        pairs, tele = topk_stps_join(
            dataset, 0.05, 0.2, 5, with_telemetry=True
        )
        assert isinstance(pairs, list)
        assert isinstance(tele, Telemetry)
        run_ids = [s.run_id for s in tele.tracer.spans if s.name == "run"]
        assert run_ids == ["topk-0001"]

    def test_disabled_telemetry_records_nothing(self, dataset):
        tele = Telemetry(enabled=False)
        stps_join(dataset, 0.05, 0.2, 0.2, telemetry=tele)
        assert not tele.metrics
        assert tele.tracer.spans == []

    def test_telemetry_accumulates_across_calls(self, dataset):
        tele = Telemetry()
        stps_join(dataset, 0.05, 0.2, 0.2, telemetry=tele)
        first = dict(tele.work_counters())
        stps_join(dataset, 0.05, 0.2, 0.2, telemetry=tele)
        second = tele.work_counters()
        assert second == {name: 2 * value for name, value in first.items()}
