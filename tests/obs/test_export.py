"""Unit tests for the metrics exporters (jsonl / prom / summary)."""

import json

import pytest

from repro.obs import (
    HISTOGRAM_BUCKETS,
    MetricsRegistry,
    render_metrics,
    to_jsonl,
    to_prometheus,
    to_summary,
)


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("filter.candidates").inc(42)
    reg.counter("engine.chunks_total").inc(4)
    reg.gauge("workers.peak").set(3.0)
    reg.histogram("chunk.seconds").observe(0.01)
    reg.histogram("chunk.seconds").observe(0.02)
    return reg


class TestJsonl:
    def test_one_record_per_instrument(self, registry):
        records = [json.loads(line) for line in to_jsonl(registry).splitlines()]
        assert len(records) == 4
        by_name = {r["name"]: r for r in records}
        assert by_name["filter.candidates"] == {
            "type": "counter", "name": "filter.candidates", "value": 42,
        }
        assert by_name["workers.peak"]["type"] == "gauge"
        hist = by_name["chunk.seconds"]
        assert hist["type"] == "histogram"
        assert hist["count"] == 2
        assert len(hist["counts"]) == len(HISTOGRAM_BUCKETS) + 1

    def test_empty_registry_renders_empty(self):
        assert to_jsonl(MetricsRegistry()) == ""


class TestPrometheus:
    def test_counter_gets_total_suffix(self, registry):
        text = to_prometheus(registry)
        assert "# TYPE repro_filter_candidates_total counter" in text
        assert "repro_filter_candidates_total 42" in text

    def test_total_suffix_not_doubled(self, registry):
        text = to_prometheus(registry)
        assert "repro_engine_chunks_total 4" in text
        assert "chunks_total_total" not in text

    def test_histogram_buckets_are_cumulative(self, registry):
        lines = to_prometheus(registry).splitlines()
        buckets = [l for l in lines if l.startswith("repro_chunk_seconds_bucket")]
        counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts)
        assert buckets[-1].startswith('repro_chunk_seconds_bucket{le="+Inf"}')
        assert counts[-1] == 2
        assert "repro_chunk_seconds_sum" in "\n".join(lines)
        assert "repro_chunk_seconds_count 2" in "\n".join(lines)

    def test_seconds_suffix_not_doubled(self, registry):
        assert "seconds_seconds" not in to_prometheus(registry)

    def test_dots_sanitized_to_underscores(self, registry):
        text = to_prometheus(registry)
        assert "filter.candidates" not in text

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestPrometheusHardening:
    """The exposition output must survive ``promtool check metrics``."""

    def test_output_is_newline_terminated(self, registry):
        assert to_prometheus(registry).endswith("\n")

    def test_every_name_matches_the_exposition_grammar(self, registry):
        from repro.obs.export import _PROM_NAME_RE

        for line in to_prometheus(registry).splitlines():
            if line.startswith("# TYPE "):
                name = line.split()[2]
            else:
                name = line.split("{", 1)[0].split(" ", 1)[0]
            assert _PROM_NAME_RE.match(name), line

    def test_hostile_instrument_name_is_sanitized(self):
        reg = MetricsRegistry()
        reg.counter('weird "name"\nwith spaces').inc(1)
        text = to_prometheus(reg)
        assert "\n\n" not in text
        assert '"' not in text
        assert "repro_weird__name__with_spaces_total 1" in text

    def test_label_value_escaping(self):
        from repro.obs.export import _escape_label_value

        assert _escape_label_value('a"b') == 'a\\"b'
        assert _escape_label_value("a\\b") == "a\\\\b"
        assert _escape_label_value("a\nb") == "a\\nb"

    def test_bucket_labels_are_quoted_floats(self, registry):
        lines = to_prometheus(registry).splitlines()
        buckets = [l for l in lines if "_bucket{" in l]
        assert buckets
        for line in buckets:
            label = line.split('le="', 1)[1].split('"', 1)[0]
            assert label == "+Inf" or float(label) > 0


class TestSummary:
    def test_all_sections_present(self, registry):
        text = to_summary(registry)
        assert "counters" in text
        assert "gauges" in text
        assert "histograms (seconds)" in text
        assert "filter.candidates" in text

    def test_empty_registry_says_so(self):
        assert to_summary(MetricsRegistry()) == "(no metrics recorded)"


class TestRenderMetrics:
    @pytest.mark.parametrize("fmt", ["jsonl", "prom", "summary"])
    def test_dispatches(self, registry, fmt):
        assert render_metrics(registry, fmt)

    def test_unknown_format_raises(self, registry):
        with pytest.raises(ValueError, match="unknown metrics format"):
            render_metrics(registry, "xml")
