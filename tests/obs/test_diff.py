"""Run-diff tooling: artifact loading, drift verdicts, rendering."""

from __future__ import annotations

import json

import pytest

from repro import Telemetry
from repro.core.query import STPSJoinQuery
from repro.exec import JoinExecutor
from repro.obs import (
    build_explain,
    diff_artifacts,
    diff_files,
    load_artifact,
    render_diff,
)
from repro.bench.reporting import bench_payload
from tests.helpers import build_random_dataset


@pytest.fixture(scope="module")
def explain_payload():
    dataset = build_random_dataset(7, n_users=40)
    query = STPSJoinQuery(eps_loc=0.05, eps_doc=0.2, eps_user=0.2)
    tele = Telemetry()
    executor = JoinExecutor(workers=1, backend="sequential", chunk_size=5)
    _, report = executor.join(
        dataset, query, algorithm="s-ppj-b", telemetry=tele, with_report=True
    )
    return build_explain(tele, report, dataset=dataset).as_dict()


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestLoadArtifact:
    def test_explain_artifact(self, tmp_path, explain_payload):
        path = _write(tmp_path, "explain.json", explain_payload)
        art = load_artifact(path)
        assert art["counters"] == explain_payload["counters"]
        assert explain_payload["run_id"] in art["label"]
        assert art["timings"]  # phase rows became timings

    def test_bench_artifact(self, tmp_path):
        payload = bench_payload(
            "speed", config={}, phases={"join": 1.5},
            counters={"funnel.matched": 3},
        )
        art = load_artifact(_write(tmp_path, "BENCH_speed.json", payload))
        assert art["label"] == "speed"
        assert art["counters"] == {"funnel.matched": 3}
        assert art["timings"] == {"join": 1.5}

    def test_bench_artifact_without_counters(self, tmp_path):
        payload = bench_payload("speed", config={}, phases={"join": 1.5})
        art = load_artifact(_write(tmp_path, "BENCH_speed.json", payload))
        assert art["counters"] == {}

    def test_unrecognized_payload_raises(self, tmp_path):
        path = _write(tmp_path, "junk.json", {"hello": "world"})
        with pytest.raises(ValueError, match="neither an explain report"):
            load_artifact(path)

    def test_non_object_payload_raises(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="not a JSON object"):
            load_artifact(path)


class TestDiffVerdicts:
    def test_identical_artifacts_show_no_drift(self, tmp_path, explain_payload):
        a = _write(tmp_path, "a.json", explain_payload)
        b = _write(tmp_path, "b.json", explain_payload)
        diff = diff_files(a, b)
        assert not diff["counter_drift"]
        assert not diff["severe"]
        assert diff["counter_deltas"] == []
        assert "identical (no drift)" in render_diff(diff)

    def test_injected_counter_regression_is_flagged(
        self, tmp_path, explain_payload
    ):
        regressed = json.loads(json.dumps(explain_payload))
        regressed["counters"]["funnel.pruned.spatial"] += 7
        regressed["counters"]["funnel.matched"] -= 1
        a = _write(tmp_path, "a.json", explain_payload)
        b = _write(tmp_path, "b.json", regressed)
        diff = diff_files(a, b)
        assert diff["counter_drift"]
        assert diff["severe"]  # funnel.matched is a result counter
        names = {d["name"]: d for d in diff["counter_deltas"]}
        assert names["funnel.matched"]["severe"]
        assert not names["funnel.pruned.spatial"]["severe"]
        text = render_diff(diff)
        assert "COUNTER DRIFT" in text
        assert "** result changed **" in text

    def test_counter_missing_on_one_side_is_drift(self):
        before = {"label": "a", "counters": {"x": 1}, "timings": {}}
        after = {"label": "b", "counters": {}, "timings": {}}
        diff = diff_artifacts(before, after)
        assert diff["counter_drift"]
        assert diff["counter_deltas"][0]["delta"] == -1

    def test_timing_only_change_is_advisory(self):
        before = {"label": "a", "counters": {"x": 1}, "timings": {"join": 1.0}}
        after = {"label": "b", "counters": {"x": 1}, "timings": {"join": 2.0}}
        diff = diff_artifacts(before, after)
        assert not diff["counter_drift"]
        assert diff["timing_deltas"] == [
            {"name": "join", "before": 1.0, "after": 2.0, "ratio": 1.0}
        ]
        text = render_diff(diff)
        assert "advisory" in text
        assert "COUNTER DRIFT" not in text

    def test_timing_within_tolerance_not_reported(self):
        before = {"label": "a", "counters": {}, "timings": {"join": 1.0}}
        after = {"label": "b", "counters": {}, "timings": {"join": 1.1}}
        assert diff_artifacts(before, after)["timing_deltas"] == []

    def test_tolerance_is_configurable(self):
        before = {"label": "a", "counters": {}, "timings": {"join": 1.0}}
        after = {"label": "b", "counters": {}, "timings": {"join": 1.1}}
        diff = diff_artifacts(before, after, tolerance=0.05)
        assert len(diff["timing_deltas"]) == 1

    def test_explain_vs_bench_artifacts_diff_cleanly(
        self, tmp_path, explain_payload
    ):
        """Cross-kind diffs work: counters compare, timings intersect."""
        bench = bench_payload(
            "speed", config={}, phases={"join": 1.0},
            counters=explain_payload["counters"],
        )
        a = _write(tmp_path, "explain.json", explain_payload)
        b = _write(tmp_path, "BENCH_speed.json", bench)
        diff = diff_files(a, b)
        assert not diff["counter_drift"]
