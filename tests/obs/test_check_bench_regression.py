"""The bench regression checker gates work counters exactly.

Wall-clock phases get a tolerance; the deterministic ``counters``
section does not — any drift must fail the check even when every phase
is comfortably within bounds, and a fresh run silently dropping the
counters a baseline has must fail too.
"""

import json
import pathlib
import subprocess
import sys

import pytest

SCRIPT = (
    pathlib.Path(__file__).resolve().parents[2]
    / "scripts"
    / "check_bench_regression.py"
)


def _run_checker(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
        timeout=60,
    )


def _payload(counters=None, phases=None, host=None):
    payload = {
        "schema_version": 1,
        "name": "demo",
        "config": {"preset": "twitter", "num_users": 10},
        "phases": phases or {"join": 1.0},
        "results": {},
    }
    if counters is not None:
        payload["counters"] = counters
    if host is not None:
        payload["host"] = host
    return payload


@pytest.fixture
def workdir(tmp_path):
    baselines = tmp_path / "baselines"
    baselines.mkdir()

    def write(payload, fresh=True):
        target = tmp_path if fresh else baselines
        path = target / "BENCH_demo.json"
        path.write_text(json.dumps(payload))
        return path

    return tmp_path, baselines, write


COUNTERS = {"funnel.object_pairs": 215, "funnel.matched": 11}


class TestCounterGate:
    def test_identical_counters_pass(self, workdir):
        _, baselines, write = workdir
        write(_payload(COUNTERS), fresh=False)
        fresh = write(_payload(COUNTERS))
        proc = _run_checker(str(fresh), "--baselines", str(baselines))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "counter(s) identical" in proc.stdout

    def test_counter_drift_fails_even_with_good_timings(self, workdir):
        """Phases identical (0% slowdown) — only the counters moved."""
        _, baselines, write = workdir
        write(_payload(COUNTERS), fresh=False)
        drifted = dict(COUNTERS, **{"funnel.matched": 10})
        fresh = write(_payload(drifted))
        proc = _run_checker(str(fresh), "--baselines", str(baselines))
        assert proc.returncode == 1
        assert "work counters drifted" in proc.stdout
        assert "funnel.matched: baseline=11 fresh=10" in proc.stdout

    def test_counter_present_on_one_side_only_is_drift(self, workdir):
        _, baselines, write = workdir
        write(_payload(COUNTERS), fresh=False)
        extra = dict(COUNTERS, **{"funnel.pruned.spatial": 5})
        fresh = write(_payload(extra))
        proc = _run_checker(str(fresh), "--baselines", str(baselines))
        assert proc.returncode == 1
        assert "funnel.pruned.spatial: baseline=None fresh=5" in proc.stdout

    def test_fresh_run_dropping_counters_fails(self, workdir):
        _, baselines, write = workdir
        write(_payload(COUNTERS), fresh=False)
        fresh = write(_payload(counters=None))
        proc = _run_checker(str(fresh), "--baselines", str(baselines))
        assert proc.returncode == 1
        assert "cannot be silently dropped" in proc.stdout

    def test_baseline_without_counters_only_notes(self, workdir):
        """Older baselines keep working until refreshed with --update."""
        _, baselines, write = workdir
        write(_payload(counters=None), fresh=False)
        fresh = write(_payload(COUNTERS))
        proc = _run_checker(str(fresh), "--baselines", str(baselines))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "baseline has no counters section" in proc.stdout

    def test_phase_regression_still_fails(self, workdir):
        _, baselines, write = workdir
        write(_payload(COUNTERS), fresh=False)
        fresh = write(_payload(COUNTERS, phases={"join": 2.0}))
        proc = _run_checker(str(fresh), "--baselines", str(baselines))
        assert proc.returncode == 1
        assert "regressed" in proc.stdout

    def test_cross_host_regression_is_advisory(self, workdir):
        """Different cpu_count between baseline and fresh hosts: the
        wall-clock regression prints but does not fail the check."""
        _, baselines, write = workdir
        write(
            _payload(COUNTERS, host={"cpu_count": 8, "load_note": "quiet"}),
            fresh=False,
        )
        fresh = write(
            _payload(
                COUNTERS, phases={"join": 2.0}, host={"cpu_count": 1}
            )
        )
        proc = _run_checker(str(fresh), "--baselines", str(baselines))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "advisory" in proc.stdout
        assert "SLOWER" in proc.stdout

    def test_one_sided_host_info_is_advisory(self, workdir):
        """Baseline predating the host section vs a fresh run carrying
        one cannot be assumed same-host."""
        _, baselines, write = workdir
        write(_payload(COUNTERS), fresh=False)
        fresh = write(
            _payload(
                COUNTERS, phases={"join": 2.0}, host={"cpu_count": 4}
            )
        )
        proc = _run_checker(str(fresh), "--baselines", str(baselines))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "advisory" in proc.stdout

    def test_same_host_regression_still_fails(self, workdir):
        _, baselines, write = workdir
        write(
            _payload(COUNTERS, host={"cpu_count": 4, "load_note": "x"}),
            fresh=False,
        )
        fresh = write(
            _payload(
                COUNTERS, phases={"join": 2.0}, host={"cpu_count": 4}
            )
        )
        proc = _run_checker(str(fresh), "--baselines", str(baselines))
        assert proc.returncode == 1
        assert "regressed" in proc.stdout

    def test_counter_drift_fails_even_cross_host(self, workdir):
        """The exact counter gate is host-independent by construction —
        advisory mode must never weaken it."""
        _, baselines, write = workdir
        write(
            _payload(COUNTERS, host={"cpu_count": 8}), fresh=False
        )
        drifted = dict(COUNTERS, **{"funnel.matched": 10})
        fresh = write(_payload(drifted, host={"cpu_count": 1}))
        proc = _run_checker(str(fresh), "--baselines", str(baselines))
        assert proc.returncode == 1
        assert "work counters drifted" in proc.stdout

    def test_update_refreshes_counter_baseline(self, workdir):
        tmp_path, baselines, write = workdir
        fresh = write(_payload(COUNTERS))
        proc = _run_checker(
            str(fresh), "--baselines", str(baselines), "--update"
        )
        assert proc.returncode == 0
        stored = json.loads((baselines / "BENCH_demo.json").read_text())
        assert stored["counters"] == COUNTERS
        proc = _run_checker(str(fresh), "--baselines", str(baselines))
        assert proc.returncode == 0
