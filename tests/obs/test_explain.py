"""EXPLAIN report assembly: structure, determinism, API surface."""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro import Telemetry, stps_join, topk_stps_join
from repro.core.query import STPSJoinQuery
from repro.exec import ExecutionPolicy, JoinExecutor
from repro.exec import faults
from repro.obs import ExplainReport, build_explain, render_explain
from tests.helpers import build_random_dataset

fork_available = "fork" in multiprocessing.get_all_start_methods()

CHUNK = 5


@pytest.fixture(scope="module")
def dataset():
    return build_random_dataset(7, n_users=40)


@pytest.fixture(scope="module")
def join_query():
    return STPSJoinQuery(eps_loc=0.05, eps_doc=0.2, eps_user=0.2)


def _explain(dataset, query, backend="sequential", workers=1, policy=None,
             **kwargs):
    tele = Telemetry()
    executor = JoinExecutor(
        workers=workers, backend=backend, chunk_size=CHUNK, policy=policy,
        **kwargs
    )
    pairs, report = executor.join(
        dataset, query, algorithm="s-ppj-b", telemetry=tele, with_report=True
    )
    return pairs, build_explain(tele, report, dataset=dataset)


class TestReportStructure:
    def test_fields_populated(self, dataset, join_query):
        pairs, explain = _explain(dataset, join_query)
        assert explain.algorithm == "join:s-ppj-b"
        assert explain.backend == "sequential"
        assert explain.run_id
        assert explain.elapsed > 0.0
        assert explain.object_funnel
        assert explain.object_funnel[-1]["stage"] == "verify"
        assert explain.object_funnel[-1]["survivors"] == explain.counters[
            "funnel.matched"
        ]
        assert explain.chunks["count"] > 0
        assert explain.top_chunks
        assert explain.top_users
        assert explain.user_funnel["emitted"] == explain.counters[
            "pairs.emitted"
        ]

    def test_funnel_rows_telescope(self, dataset, join_query):
        """Each stage's survivors are the next stage's input."""
        _, explain = _explain(dataset, join_query)
        rows = explain.object_funnel
        assert rows[0]["input"] == explain.counters["funnel.object_pairs"]
        for prev, nxt in zip(rows, rows[1:-1]):
            assert prev["survivors"] == nxt["input"]
            assert prev["pruned"] > 0  # zero stages have no row
        # The last pruning row feeds exact verification.
        assert rows[-2]["survivors"] == rows[-1]["input"]

    def test_as_dict_round_trips_through_json(self, dataset, join_query):
        _, explain = _explain(dataset, join_query)
        payload = json.loads(explain.to_json())
        assert payload["kind"] == "explain"
        assert payload["schema_version"] == 1
        assert payload["counters"] == explain.counters

    def test_render_mentions_every_stage(self, dataset, join_query):
        _, explain = _explain(dataset, join_query)
        text = explain.summary()
        for row in explain.object_funnel:
            assert row["stage"] in text
        assert "phase attribution" in text
        assert render_explain(json.loads(explain.to_json())) == text

    def test_build_without_report_or_dataset(self):
        tele = Telemetry()
        tele.metrics.counter("funnel.object_pairs").inc(4)
        tele.metrics.counter("funnel.verified").inc(4)
        tele.metrics.counter("funnel.matched").inc(1)
        explain = build_explain(tele)
        assert isinstance(explain, ExplainReport)
        assert explain.run_id is None
        assert explain.chunks == {}
        assert explain.top_users == []
        assert explain.object_funnel[-1]["input"] == 4


class TestWorkDictDeterminism:
    def test_identical_across_backends(self, dataset, join_query):
        _, sequential = _explain(dataset, join_query)
        _, threaded = _explain(dataset, join_query, "thread", 3)
        assert sequential.work_dict() == threaded.work_dict()

    @pytest.mark.skipif(not fork_available, reason="fork start method unavailable")
    def test_identical_on_process_backend(self, dataset, join_query):
        _, sequential = _explain(dataset, join_query)
        _, process = _explain(
            dataset, join_query, "process", 3, start_method="fork"
        )
        assert sequential.work_dict() == process.work_dict()

    def test_identical_under_faulty_retries(self, dataset, join_query):
        _, clean = _explain(dataset, join_query)
        policy = ExecutionPolicy(
            max_retries=2, backoff_base=0.0, backoff_jitter=0.0
        )
        faults.install_fault_plan(faults.FaultPlan.parse("error@0*2"))
        try:
            _, faulty = _explain(dataset, join_query, policy=policy)
        finally:
            faults.install_fault_plan(None)
        assert faulty.work_dict() == clean.work_dict()

    def test_work_dict_has_no_timings(self, dataset, join_query):
        _, explain = _explain(dataset, join_query)
        work = explain.work_dict()
        assert set(work) == {
            "algorithm", "object_funnel", "user_funnel", "counters"
        }


class TestApiSurface:
    def test_join_explain_appends_report_last(self, dataset, join_query):
        q = join_query
        result = stps_join(
            dataset, q.eps_loc, q.eps_doc, q.eps_user,
            algorithm="s-ppj-b", explain=True,
        )
        pairs, explain = result
        assert isinstance(explain, ExplainReport)
        plain = stps_join(
            dataset, q.eps_loc, q.eps_doc, q.eps_user, algorithm="s-ppj-b"
        )
        assert pairs == plain

    def test_join_explain_composes_with_report_and_telemetry(
        self, dataset, join_query
    ):
        q = join_query
        pairs, report, tele, explain = stps_join(
            dataset, q.eps_loc, q.eps_doc, q.eps_user,
            algorithm="s-ppj-b", with_report=True, with_telemetry=True,
            explain=True,
        )
        assert explain.run_id == report.run_id
        assert explain.counters == tele.work_counters()

    def test_topk_explain(self, dataset):
        pairs, explain = topk_stps_join(
            dataset, 0.05, 0.2, k=7, algorithm="topk-s-ppj-p", explain=True
        )
        assert len(pairs) <= 7
        assert isinstance(explain, ExplainReport)
        assert explain.counters.get("funnel.matched", 0) >= 0


class TestCostCalibration:
    """Every parallel backend surfaces modeled-vs-actual chunk costs."""

    def _calibration(self, dataset, join_query, backend, workers, **kwargs):
        _, explain = _explain(
            dataset, join_query, backend, workers, **kwargs
        )
        return explain.cost_calibration

    @pytest.mark.parametrize(
        "backend,workers",
        [("sequential", 1), ("thread", 3)],
    )
    def test_calibration_present(self, dataset, join_query, backend, workers):
        calibration = self._calibration(dataset, join_query, backend, workers)
        assert calibration["chunks"] > 0
        assert (
            calibration["ratio_min"]
            <= calibration["ratio_median"]
            <= calibration["ratio_max"]
        )
        assert calibration["seconds_per_cost"] > 0
        assert "chunk" in calibration["worst_chunk"]

    @pytest.mark.skipif(
        not fork_available, reason="fork start method unavailable"
    )
    def test_calibration_on_process_backend(self, dataset, join_query):
        calibration = self._calibration(
            dataset, join_query, "process", 3, start_method="fork"
        )
        assert calibration["chunks"] > 0
        assert calibration["seconds_per_cost"] > 0

    def test_calibration_in_dict_and_render(self, dataset, join_query):
        _, explain = _explain(dataset, join_query)
        payload = explain.as_dict()
        assert payload["cost_calibration"] == explain.cost_calibration
        assert "cost calibration" in render_explain(payload)
