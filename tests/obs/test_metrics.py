"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import math

import pytest

from repro.obs import HISTOGRAM_BUCKETS, MetricsRegistry
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_starts_at_zero_and_adds(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge()
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5

    def test_update_max_keeps_maximum(self):
        g = Gauge()
        g.update_max(2.0)
        g.update_max(1.0)
        assert g.value == 2.0


class TestHistogram:
    def test_buckets_are_log_scale_and_fixed(self):
        assert len(HISTOGRAM_BUCKETS) == 16
        assert HISTOGRAM_BUCKETS[0] == pytest.approx(1e-6)
        for lo, hi in zip(HISTOGRAM_BUCKETS, HISTOGRAM_BUCKETS[1:]):
            assert hi / lo == pytest.approx(4.0)

    def test_observe_tracks_count_sum_min_max(self):
        h = Histogram()
        h.observe(0.001)
        h.observe(0.1)
        assert h.count == 2
        assert h.total == pytest.approx(0.101)
        assert h.vmin == pytest.approx(0.001)
        assert h.vmax == pytest.approx(0.1)
        assert h.mean == pytest.approx(0.0505)

    def test_observation_lands_in_one_bucket(self):
        h = Histogram()
        h.observe(0.5)
        assert sum(h.counts) == 1

    def test_above_top_bound_lands_in_overflow(self):
        h = Histogram()
        h.observe(HISTOGRAM_BUCKETS[-1] * 10)
        assert h.counts[-1] == 1

    def test_empty_as_dict_has_zero_min(self):
        assert Histogram().as_dict()["min"] == 0.0

    def test_merge_adds_elementwise(self):
        a, b = Histogram(), Histogram()
        a.observe(0.001)
        b.observe(1.0)
        b.observe(2.0)
        a.merge(b.as_dict())
        assert a.count == 3
        assert a.total == pytest.approx(3.001)
        assert a.vmin == pytest.approx(0.001)
        assert a.vmax == pytest.approx(2.0)
        assert sum(a.counts) == 3

    def test_merge_empty_snapshot_keeps_min(self):
        a = Histogram()
        a.observe(0.5)
        a.merge(Histogram().as_dict())
        assert a.vmin == pytest.approx(0.5)
        assert not math.isinf(a.vmin)


class TestMetricsRegistry:
    def test_instruments_are_cached_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.gauge("g") is reg.gauge("g")

    def test_disabled_registry_hands_out_noops(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("a").inc(10)
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(0.5)
        assert reg.counter_values() == {}
        assert reg.as_dict() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert not reg

    def test_bool_reflects_recorded_data(self):
        reg = MetricsRegistry()
        assert not reg
        reg.counter("a").inc()
        assert reg

    def test_counter_values_sorted_and_prefix_filtered(self):
        reg = MetricsRegistry()
        reg.counter("b.two").inc(2)
        reg.counter("a.one").inc(1)
        assert list(reg.counter_values()) == ["a.one", "b.two"]
        assert reg.counter_values(prefix="a.") == {"a.one": 1}

    def test_merge_roundtrip(self):
        src = MetricsRegistry()
        src.counter("c").inc(3)
        src.gauge("g").set(2.0)
        src.histogram("h").observe(0.25)
        dst = MetricsRegistry()
        dst.counter("c").inc(1)
        dst.gauge("g").set(5.0)
        dst.merge(src.as_dict())
        assert dst.counter_values() == {"c": 4}
        assert dst.gauge_values() == {"g": 5.0}  # merge keeps the max
        assert dst.histogram_items()["h"].count == 1

    def test_merge_none_and_empty_are_noops(self):
        reg = MetricsRegistry()
        reg.merge(None)
        reg.merge({})
        assert not reg

    def test_merge_into_disabled_is_noop(self):
        src = MetricsRegistry()
        src.counter("c").inc(1)
        dst = MetricsRegistry(enabled=False)
        dst.merge(src.as_dict())
        assert dst.counter_values() == {}
