"""The CI telemetry schema checker accepts real artifacts, rejects junk."""

import pathlib
import subprocess
import sys

import pytest

from repro import Telemetry, stps_join
from tests.helpers import build_random_dataset

SCRIPT = (
    pathlib.Path(__file__).resolve().parents[2] / "scripts" / "check_telemetry.py"
)


def _run_checker(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
        timeout=60,
    )


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("telemetry")
    dataset = build_random_dataset(3, n_users=20)
    _, tele = stps_join(
        dataset, 0.05, 0.2, 0.2, algorithm="s-ppj-f", with_telemetry=True
    )
    assert isinstance(tele, Telemetry)
    trace = tmp / "trace.jsonl"
    metrics = tmp / "metrics.jsonl"
    prom = tmp / "metrics.prom"
    tele.write_trace(trace)
    tele.write_metrics(metrics, fmt="jsonl")
    tele.write_metrics(prom, fmt="prom")
    return trace, metrics, prom


def test_accepts_real_trace_and_metrics(artifacts):
    trace, metrics, _ = artifacts
    proc = _run_checker("--trace", str(trace), "--metrics", str(metrics))
    assert proc.returncode == 0, proc.stderr


def test_accepts_real_prom_exposition(artifacts):
    _, _, prom = artifacts
    proc = _run_checker(
        "--metrics", str(prom), "--metrics-format", "prom"
    )
    assert proc.returncode == 0, proc.stderr


def test_rejects_malformed_trace(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"nope": true}\n')
    proc = _run_checker("--trace", str(bad))
    assert proc.returncode == 1
    assert "missing fields" in proc.stderr


def test_rejects_histogram_count_mismatch(tmp_path):
    bad = tmp_path / "bad_metrics.jsonl"
    bad.write_text(
        '{"type":"histogram","name":"h","counts":' + str([1] * 17)
        + ',"count":99,"sum":1.0,"min":0.0,"max":1.0}\n'
    )
    proc = _run_checker("--metrics", str(bad))
    assert proc.returncode == 1
    assert "bucket counts" in proc.stderr


def test_requires_at_least_one_artifact():
    proc = _run_checker()
    assert proc.returncode == 2
