"""Unit tests for the thread-local active-registry runtime."""

import threading

from repro.obs import MetricsRegistry
from repro.obs import runtime as obs_runtime


class TestActivation:
    def test_no_registry_active_by_default(self):
        assert obs_runtime.active() is None

    def test_activate_restore_roundtrip(self):
        reg = MetricsRegistry()
        previous = obs_runtime.activate(reg)
        try:
            assert obs_runtime.active() is reg
        finally:
            obs_runtime.restore(previous)
        assert obs_runtime.active() is None

    def test_nested_activation_restores_outer(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        prev_outer = obs_runtime.activate(outer)
        try:
            prev_inner = obs_runtime.activate(inner)
            assert prev_inner is outer
            obs_runtime.restore(prev_inner)
            assert obs_runtime.active() is outer
        finally:
            obs_runtime.restore(prev_outer)

    def test_activation_is_thread_local(self):
        reg = MetricsRegistry()
        prev = obs_runtime.activate(reg)
        seen = []
        try:
            thread = threading.Thread(
                target=lambda: seen.append(obs_runtime.active())
            )
            thread.start()
            thread.join()
        finally:
            obs_runtime.restore(prev)
        assert seen == [None]


class TestCount:
    def test_count_is_noop_without_registry(self):
        obs_runtime.count("never.recorded")  # must not raise

    def test_count_hits_the_active_registry(self):
        reg = MetricsRegistry()
        prev = obs_runtime.activate(reg)
        try:
            obs_runtime.count("events", 3)
        finally:
            obs_runtime.restore(prev)
        assert reg.counter_values() == {"events": 3}


class TestPhase:
    def test_phase_records_a_histogram_observation(self):
        reg = MetricsRegistry()
        prev = obs_runtime.activate(reg)
        try:
            with obs_runtime.phase("build"):
                pass
        finally:
            obs_runtime.restore(prev)
        hist = reg.histogram_items()["phase.build"]
        assert hist.count == 1
        assert hist.total >= 0.0

    def test_phase_is_noop_without_registry(self):
        with obs_runtime.phase("build"):
            pass  # must not raise, must record nowhere
