"""Unit tests for the Telemetry facade."""

import pytest

from repro.obs import Telemetry


class TestRecordStats:
    def test_counters_land_under_filter_prefix(self):
        tele = Telemetry()
        tele.record_stats({"candidates": 10, "refinements": 4})
        assert tele.metrics.counter_values() == {
            "filter.candidates": 10,
            "filter.refinements": 4,
        }

    def test_zero_valued_counters_are_skipped(self):
        tele = Telemetry()
        tele.record_stats({"candidates": 0})
        assert tele.metrics.counter_values() == {}

    def test_none_is_a_noop(self):
        tele = Telemetry()
        tele.record_stats(None)
        assert not tele.metrics


class TestRecordChunk:
    def test_first_attempt_counts_no_extras(self):
        tele = Telemetry()
        tele.record_chunk(0.5, attempts=1)
        values = tele.metrics.counter_values()
        assert values == {"engine.chunks_completed": 1}
        assert tele.metrics.histogram_items()["chunk.seconds"].count == 1

    def test_retries_count_extra_attempts(self):
        tele = Telemetry()
        tele.record_chunk(0.5, attempts=3)
        values = tele.metrics.counter_values()
        assert values["engine.chunk_extra_attempts"] == 2


class TestWorkCounters:
    def test_excludes_engine_scheduling_counters(self):
        tele = Telemetry()
        tele.record_chunk(0.5, attempts=2)
        tele.record_stats({"candidates": 7})
        assert tele.work_counters() == {"filter.candidates": 7}


class TestDisabled:
    def test_disabled_telemetry_is_inert(self):
        tele = Telemetry(enabled=False)
        tele.record_stats({"candidates": 10})
        tele.record_chunk(0.5, attempts=3)
        span = tele.tracer.start_run("join")
        span.end()
        assert not tele.metrics
        assert tele.tracer.spans == []
        assert tele.summary() == "(no metrics recorded)"


class TestOutput:
    def test_write_metrics_validates_format(self, tmp_path):
        tele = Telemetry()
        with pytest.raises(ValueError, match="unknown metrics format"):
            tele.write_metrics(tmp_path / "m.xml", fmt="xml")

    @pytest.mark.parametrize("fmt", ["jsonl", "prom", "summary"])
    def test_write_metrics_ends_with_newline(self, tmp_path, fmt):
        tele = Telemetry()
        tele.record_stats({"candidates": 3})
        path = tmp_path / f"metrics.{fmt}"
        tele.write_metrics(path, fmt=fmt)
        assert path.read_text().endswith("\n")

    def test_write_trace_returns_span_count(self, tmp_path):
        tele = Telemetry()
        tele.tracer.start_run("join").end()
        assert tele.write_trace(tmp_path / "trace.jsonl") == 1
