"""Telemetry determinism: identical work counters everywhere.

The observability subsystem's central guarantee (see
``docs/observability.md``): for a fixed (dataset, query, algorithm,
chunk size), the *work counters* — every counter except the ``engine.*``
scheduling family — are byte-identical

* across the sequential, thread and process backends, and
* under injected chunk faults with retries enabled, because chunk-local
  registries are merged into the run's registry only when a chunk's
  result is accepted (retried attempts contribute nothing).

Histogram bucket placement is wall-clock-dependent, so only observation
counts are compared where it is meaningful.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro import Telemetry
from repro.core.query import STPSJoinQuery, TopKQuery
from repro.exec import ExecutionPolicy, JoinExecutor
from repro.exec import faults
from tests.helpers import build_random_dataset

JOIN_ALGOS = ["naive", "s-ppj-c", "s-ppj-b", "s-ppj-f", "s-ppj-d"]
TOPK_ALGOS = ["topk-s-ppj-p", "topk-s-ppj-d"]

fork_available = "fork" in multiprocessing.get_all_start_methods()

CHUNK = 5


@pytest.fixture(scope="module")
def dataset():
    return build_random_dataset(7, n_users=40)


@pytest.fixture(scope="module")
def join_query():
    return STPSJoinQuery(eps_loc=0.05, eps_doc=0.2, eps_user=0.2)


@pytest.fixture(scope="module")
def topk_query():
    return TopKQuery(eps_loc=0.05, eps_doc=0.2, k=7)


def _join_counters(dataset, query, algorithm, backend, workers, **kwargs):
    tele = Telemetry()
    executor = JoinExecutor(
        workers=workers, backend=backend, chunk_size=CHUNK, **kwargs
    )
    executor.join(dataset, query, algorithm=algorithm, telemetry=tele)
    return tele.work_counters()


class TestBackendMatrix:
    @pytest.mark.parametrize("algorithm", JOIN_ALGOS)
    def test_thread_matches_sequential(self, dataset, join_query, algorithm):
        sequential = _join_counters(
            dataset, join_query, algorithm, "sequential", 1
        )
        threaded = _join_counters(dataset, join_query, algorithm, "thread", 3)
        assert sequential  # the instrumentation actually recorded work
        assert threaded == sequential

    @pytest.mark.parametrize("algorithm", ["s-ppj-b", "s-ppj-f"])
    @pytest.mark.skipif(not fork_available, reason="fork start method unavailable")
    def test_process_matches_sequential(self, dataset, join_query, algorithm):
        sequential = _join_counters(
            dataset, join_query, algorithm, "sequential", 1
        )
        process = _join_counters(
            dataset, join_query, algorithm, "process", 3, start_method="fork"
        )
        assert process == sequential

    @pytest.mark.parametrize("algorithm", TOPK_ALGOS)
    def test_topk_thread_matches_sequential(
        self, dataset, topk_query, algorithm
    ):
        results = {}
        for backend, workers in [("sequential", 1), ("thread", 3)]:
            tele = Telemetry()
            executor = JoinExecutor(
                workers=workers, backend=backend, chunk_size=CHUNK
            )
            executor.topk(dataset, topk_query, algorithm=algorithm, telemetry=tele)
            results[backend] = tele.work_counters()
        assert results["sequential"]
        assert results["thread"] == results["sequential"]


class TestFaultInjection:
    """Retried chunks must not double-count: merge happens on accept only."""

    @pytest.mark.parametrize("algorithm", ["s-ppj-b", "s-ppj-f"])
    def test_errors_with_retries_leave_counters_identical(
        self, dataset, join_query, algorithm
    ):
        clean = _join_counters(dataset, join_query, algorithm, "sequential", 1)

        policy = ExecutionPolicy(
            max_retries=2, backoff_base=0.0, backoff_jitter=0.0
        )
        faults.install_fault_plan(faults.FaultPlan.parse("error@0*2"))
        try:
            tele = Telemetry()
            executor = JoinExecutor(
                workers=1, backend="sequential", chunk_size=CHUNK, policy=policy
            )
            _, report = executor.join(
                dataset,
                join_query,
                algorithm=algorithm,
                telemetry=tele,
                with_report=True,
            )
        finally:
            faults.install_fault_plan(None)

        assert report.chunks_retried >= 1  # the fault actually fired
        assert max(report.chunk_attempts.values()) == 3
        assert tele.work_counters() == clean

    @pytest.mark.skipif(not fork_available, reason="fork start method unavailable")
    def test_pooled_faulty_run_matches_clean_sequential(
        self, dataset, join_query
    ):
        clean = _join_counters(dataset, join_query, "s-ppj-b", "sequential", 1)

        policy = ExecutionPolicy(
            max_retries=2, backoff_base=0.0, backoff_jitter=0.0
        )
        faults.install_fault_plan(faults.FaultPlan.parse("error@0*2"))
        try:
            tele = Telemetry()
            executor = JoinExecutor(
                workers=3,
                backend="process",
                start_method="fork",
                chunk_size=CHUNK,
                policy=policy,
            )
            executor.join(
                dataset, join_query, algorithm="s-ppj-b", telemetry=tele
            )
        finally:
            faults.install_fault_plan(None)

        assert tele.work_counters() == clean


class TestChunkHistogramCounts:
    def test_chunk_observation_count_matches_chunks_completed(
        self, dataset, join_query
    ):
        tele = Telemetry()
        executor = JoinExecutor(workers=2, backend="thread", chunk_size=CHUNK)
        _, report = executor.join(
            dataset,
            join_query,
            algorithm="s-ppj-b",
            telemetry=tele,
            with_report=True,
        )
        hist = tele.metrics.histogram_items()["chunk.seconds"]
        assert hist.count == report.chunks_completed
