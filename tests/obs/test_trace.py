"""Unit tests for span tracing: deterministic ids, JSONL output."""

import json

import pytest

from repro.obs import Tracer


class TestIds:
    def test_run_ids_are_deterministic_and_sequential(self):
        tracer = Tracer()
        run1 = tracer.start_run("join")
        run2 = tracer.start_run("join")
        assert run1.run_id == "join-0001"
        assert run2.run_id == "join-0002"

    def test_span_ids_number_within_the_run(self):
        tracer = Tracer()
        run = tracer.start_run("topk")
        child = tracer.start_span("setup", parent=run)
        assert run.span_id == "topk-0001/s1"
        assert child.span_id == "topk-0001/s2"
        assert child.parent_id == run.span_id

    def test_two_tracers_assign_identical_ids(self):
        ids = []
        for _ in range(2):
            tracer = Tracer()
            run = tracer.start_run("join")
            tracer.start_span("setup", parent=run)
            tracer.start_span("chunk", parent=run)
            ids.append([s.span_id for s in tracer.spans])
        assert ids[0] == ids[1]


class TestSpans:
    def test_end_stamps_finish_and_attrs(self):
        tracer = Tracer()
        span = tracer.start_run("join", attrs={"algorithm": "s-ppj-f"})
        span.end(chunks_total=4)
        data = span.to_dict()
        assert data["end"] >= data["start"]
        assert data["attrs"] == {"algorithm": "s-ppj-f", "chunks_total": 4}

    def test_events_attach_to_the_span(self):
        tracer = Tracer()
        span = tracer.start_run("join")
        span.event("retry", chunk=3, attempt=2)
        (event,) = span.to_dict()["events"]
        assert event["name"] == "retry"
        assert event["chunk"] == 3
        assert "time" in event

    def test_record_backdates_by_duration(self):
        tracer = Tracer()
        run = tracer.start_run("join")
        tracer.record("chunk", 1.5, parent=run, attrs={"chunk": 0})
        chunk = tracer.spans[-1]
        assert chunk.to_dict()["duration"] == pytest.approx(1.5, abs=0.05)
        assert chunk.parent_id == run.span_id

    def test_unended_span_serializes_with_zero_duration(self):
        tracer = Tracer()
        span = tracer.start_run("join")
        assert span.to_dict()["duration"] == 0.0


class TestDisabled:
    def test_disabled_tracer_collects_nothing(self):
        tracer = Tracer(enabled=False)
        span = tracer.start_run("join")
        span.event("retry")
        span.end()
        tracer.record("chunk", 1.0, parent=span)
        assert tracer.spans == []
        assert span.span_id is None


class TestOutput:
    def test_jsonl_is_one_object_per_line(self):
        tracer = Tracer()
        run = tracer.start_run("join")
        tracer.start_span("setup", parent=run).end()
        run.end()
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert {"run_id", "span_id", "name", "start", "end",
                    "duration", "attrs", "events"} <= set(record)

    def test_write_returns_span_count(self, tmp_path):
        tracer = Tracer()
        tracer.start_run("join").end()
        path = tmp_path / "trace.jsonl"
        assert tracer.write(path) == 1
        assert len(path.read_text().splitlines()) == 1

    def test_write_empty_trace_writes_empty_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert Tracer().write(path) == 0
        assert path.read_text() == ""
