"""Similarity measures: exact arithmetic, bound admissibility, and exact
join semantics for every measure through the PPJOIN engine."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.textual.measures import (
    COSINE,
    DICE,
    JACCARD,
    MEASURES,
    OVERLAP,
    SimilarityMeasure,
)
from repro.textual.ppjoin import similarity_rs_join, similarity_self_join

doc_strategy = st.sets(st.integers(0, 30), min_size=1, max_size=10).map(
    lambda s: tuple(sorted(s))
)
collection = st.lists(doc_strategy, max_size=20)

NORMALIZED = [JACCARD, COSINE, DICE]
NORM_THRESHOLDS = [0.25, 1 / 3, 0.5, 0.6000000000000001, 0.75, 1.0]
OVERLAP_THRESHOLDS = [1, 2, 3, 5]


def brute_force_self(docs, measure, threshold):
    out = set()
    for i in range(len(docs)):
        if not docs[i]:
            continue
        for j in range(i + 1, len(docs)):
            if docs[j] and measure.similarity(docs[i], docs[j]) >= threshold:
                out.add((i, j))
    return out


def brute_force_rs(docs_r, docs_s, measure, threshold):
    return {
        (i, j)
        for i, r in enumerate(docs_r)
        for j, s in enumerate(docs_s)
        if r and s and measure.similarity(r, s) >= threshold
    }


class TestExactValues:
    def test_known_similarities(self):
        a, b = (1, 2, 3), (2, 3, 4)
        assert JACCARD.similarity(a, b) == pytest.approx(0.5)
        assert COSINE.similarity(a, b) == pytest.approx(2 / 3)
        assert DICE.similarity(a, b) == pytest.approx(2 / 3)
        assert OVERLAP.similarity(a, b) == 2.0

    @given(doc_strategy, doc_strategy)
    def test_normalized_measures_in_unit_interval(self, a, b):
        for measure in NORMALIZED:
            assert 0.0 <= measure.similarity(a, b) <= 1.0 + 1e-12

    @given(doc_strategy)
    def test_self_similarity_maximal(self, a):
        for measure in NORMALIZED:
            assert measure.similarity(a, a) == pytest.approx(1.0)
        assert OVERLAP.similarity(a, a) == len(a)

    def test_registry(self):
        assert set(MEASURES) == {"jaccard", "cosine", "dice", "overlap"}
        assert all(isinstance(m, SimilarityMeasure) for m in MEASURES.values())


class TestThresholdValidation:
    def test_normalized_domain(self):
        for measure in NORMALIZED:
            measure.validate_threshold(0.5)
            with pytest.raises(ValueError):
                measure.validate_threshold(0.0)
            with pytest.raises(ValueError):
                measure.validate_threshold(1.5)

    def test_overlap_domain(self):
        OVERLAP.validate_threshold(1)
        OVERLAP.validate_threshold(7)
        with pytest.raises(ValueError):
            OVERLAP.validate_threshold(0)


class TestBoundAdmissibility:
    @pytest.mark.parametrize("measure", NORMALIZED, ids=lambda m: m.name)
    @given(a=doc_strategy, b=doc_strategy, t=st.sampled_from(NORM_THRESHOLDS))
    @settings(max_examples=200)
    def test_required_overlap_admissible(self, measure, a, b, t):
        """A matching pair always meets the derived overlap bound."""
        if measure.similarity(a, b) >= t:
            alpha = measure.required_overlap(t, len(a), len(b))
            assert len(set(a) & set(b)) >= alpha

    @pytest.mark.parametrize("measure", NORMALIZED, ids=lambda m: m.name)
    @given(a=doc_strategy, b=doc_strategy, t=st.sampled_from(NORM_THRESHOLDS))
    @settings(max_examples=200)
    def test_size_bounds_admissible(self, measure, a, b, t):
        if measure.similarity(a, b) >= t:
            assert len(b) >= measure.min_partner_size(t, len(a)) - 1e-9
            assert len(b) <= measure.max_partner_size(t, len(a)) + 1e-9

    @pytest.mark.parametrize("measure", NORMALIZED, ids=lambda m: m.name)
    @given(a=doc_strategy, b=doc_strategy, t=st.sampled_from(NORM_THRESHOLDS))
    @settings(max_examples=200)
    def test_prefix_filter_admissible(self, measure, a, b, t):
        if measure.similarity(a, b) < t:
            return
        pa = set(a[: measure.probe_prefix_length(t, len(a))])
        pb = set(b[: measure.probe_prefix_length(t, len(b))])
        assert pa & pb, f"{measure.name} probe prefix would prune a true match"

    @pytest.mark.parametrize("measure", NORMALIZED, ids=lambda m: m.name)
    @given(a=doc_strategy, b=doc_strategy, t=st.sampled_from(NORM_THRESHOLDS))
    @settings(max_examples=200)
    def test_index_prefix_admissible(self, measure, a, b, t):
        """For |b| <= |a|: probe prefix of a meets index prefix of b."""
        if len(b) > len(a) or measure.similarity(a, b) < t:
            return
        pa = set(a[: measure.probe_prefix_length(t, len(a))])
        ib = set(b[: measure.index_prefix_length(t, len(b))])
        assert pa & ib, f"{measure.name} index prefix would prune a true match"


class TestJoinsAllMeasures:
    @pytest.mark.parametrize("measure", NORMALIZED, ids=lambda m: m.name)
    @given(docs=collection, t=st.sampled_from(NORM_THRESHOLDS))
    @settings(max_examples=60, deadline=None)
    def test_self_join_exact(self, measure, docs, t):
        got = set(similarity_self_join(docs, t, measure=measure))
        assert got == brute_force_self(docs, measure, t)

    @pytest.mark.parametrize("measure", NORMALIZED, ids=lambda m: m.name)
    @given(docs_r=collection, docs_s=collection, t=st.sampled_from(NORM_THRESHOLDS))
    @settings(max_examples=60, deadline=None)
    def test_rs_join_exact(self, measure, docs_r, docs_s, t):
        got = set(similarity_rs_join(docs_r, docs_s, t, measure=measure))
        assert got == brute_force_rs(docs_r, docs_s, measure, t)

    @given(docs=collection, t=st.sampled_from(OVERLAP_THRESHOLDS))
    @settings(max_examples=60, deadline=None)
    def test_overlap_self_join_exact(self, docs, t):
        got = set(similarity_self_join(docs, t, measure=OVERLAP))
        assert got == brute_force_self(docs, OVERLAP, t)

    @given(docs_r=collection, docs_s=collection, t=st.sampled_from(OVERLAP_THRESHOLDS))
    @settings(max_examples=40, deadline=None)
    def test_overlap_rs_join_exact(self, docs_r, docs_s, t):
        got = set(similarity_rs_join(docs_r, docs_s, t, measure=OVERLAP))
        assert got == brute_force_rs(docs_r, docs_s, OVERLAP, t)

    @given(docs=collection, t=st.sampled_from(NORM_THRESHOLDS))
    @settings(max_examples=40, deadline=None)
    def test_suffix_variant_exact_all_measures(self, docs, t):
        for measure in NORMALIZED:
            got = set(similarity_self_join(docs, t, measure=measure, suffix=True))
            assert got == brute_force_self(docs, measure, t), measure.name
