"""Tests for the token dictionary and corpus encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.textual.vocabulary import TokenDictionary, encode_corpus

corpus_strategy = st.lists(
    st.sets(st.sampled_from("abcdefghij"), min_size=0, max_size=6),
    min_size=0,
    max_size=20,
)


class TestBuild:
    def test_df_ordering(self):
        docs = [{"rare", "common"}, {"common"}, {"common", "mid"}, {"mid"}]
        vocab = TokenDictionary.build(docs)
        assert vocab.id_of("rare") < vocab.id_of("mid") < vocab.id_of("common")
        assert vocab.df("common") == 3
        assert vocab.df("rare") == 1

    def test_duplicates_within_doc_count_once(self):
        vocab = TokenDictionary.build([["a", "a", "b"]])
        assert vocab.df("a") == 1

    def test_tie_break_deterministic(self):
        docs = [{"zeta"}, {"alpha"}]
        vocab = TokenDictionary.build(docs)
        assert vocab.id_of("alpha") < vocab.id_of("zeta")

    def test_len_and_contains(self):
        vocab = TokenDictionary.build([{"x", "y"}])
        assert len(vocab) == 2
        assert "x" in vocab
        assert "nope" not in vocab

    @given(corpus_strategy)
    def test_ids_are_dense_and_df_sorted(self, docs):
        vocab = TokenDictionary.build(docs)
        dfs = [vocab.df(vocab.token_of(i)) for i in range(len(vocab))]
        assert dfs == sorted(dfs)


class TestEncode:
    def test_encode_sorted_unique(self):
        vocab = TokenDictionary.build([{"a", "b", "c"}, {"c"}, {"c", "b"}])
        doc = vocab.encode(["c", "a", "c", "b"])
        assert list(doc) == sorted(doc)
        assert len(doc) == 3

    def test_encode_unknown_raises(self):
        vocab = TokenDictionary.build([{"a"}])
        with pytest.raises(KeyError):
            vocab.encode(["a", "unknown"])

    def test_encode_partial_drops_unknown(self):
        vocab = TokenDictionary.build([{"a"}])
        assert vocab.encode_partial(["a", "unknown"]) == (vocab.id_of("a"),)

    @given(corpus_strategy)
    def test_roundtrip(self, docs):
        vocab = TokenDictionary.build(docs)
        for doc in docs:
            assert vocab.decode(vocab.encode(doc)) == frozenset(doc)

    def test_encode_corpus_helper(self):
        vocab, encoded = encode_corpus([{"a", "b"}, {"b"}])
        assert len(encoded) == 2
        assert vocab.decode(encoded[0]) == frozenset({"a", "b"})
