"""Tests for similarity arithmetic and the join filter bounds.

The key properties: every filter bound must be *admissible* — it may admit
false candidates but can never reject a pair that truly satisfies the
threshold.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.textual.verify import (
    index_prefix_length,
    jaccard,
    overlap,
    overlap_at_least,
    position_upper_bound,
    probe_prefix_length,
    required_overlap,
    suffix_filter,
)

doc_strategy = st.sets(st.integers(0, 40), max_size=15).map(
    lambda s: tuple(sorted(s))
)
thresholds = st.sampled_from([0.1, 0.25, 1 / 3, 0.5, 0.6, 0.75, 0.9, 1.0])


class TestJaccardOverlap:
    def test_known_values(self):
        assert jaccard((1, 2, 3), (2, 3, 4)) == pytest.approx(0.5)
        assert overlap((1, 2, 3), (2, 3, 4)) == 2

    def test_disjoint(self):
        assert jaccard((1,), (2,)) == 0.0

    def test_identical(self):
        assert jaccard((1, 2), (1, 2)) == 1.0

    def test_both_empty_convention(self):
        assert jaccard((), ()) == 1.0

    @given(doc_strategy, doc_strategy)
    def test_overlap_matches_sets(self, a, b):
        assert overlap(a, b) == len(set(a) & set(b))

    @given(doc_strategy, doc_strategy)
    def test_jaccard_matches_sets(self, a, b):
        sa, sb = set(a), set(b)
        union = len(sa | sb)
        expected = (len(sa & sb) / union) if union else 1.0
        assert jaccard(a, b) == pytest.approx(expected)

    @given(doc_strategy, doc_strategy)
    def test_jaccard_symmetric(self, a, b):
        assert jaccard(a, b) == pytest.approx(jaccard(b, a))

    @given(doc_strategy, doc_strategy, st.integers(0, 20))
    def test_overlap_at_least_correct(self, a, b, alpha):
        assert overlap_at_least(a, b, alpha) == (overlap(a, b) >= alpha)


class TestBounds:
    @given(doc_strategy, doc_strategy, thresholds)
    def test_required_overlap_is_exact_threshold(self, a, b, t):
        """jaccard(a,b) >= t  iff  overlap >= alpha (up to float slack)."""
        if not a or not b:
            return
        alpha = required_overlap(t, len(a), len(b))
        if jaccard(a, b) >= t:
            assert overlap(a, b) >= alpha

    @given(st.integers(1, 50), thresholds)
    def test_prefix_lengths_in_range(self, length, t):
        p = probe_prefix_length(length, t)
        ip = index_prefix_length(length, t)
        assert 1 <= p <= length
        assert 1 <= ip <= p  # index prefix never longer than probe prefix

    def test_prefix_length_threshold_one(self):
        # t=1 requires identity; a single prefix token suffices.
        assert probe_prefix_length(10, 1.0) == 1

    def test_prefix_length_zero_doc(self):
        assert probe_prefix_length(0, 0.5) == 0

    @given(doc_strategy, doc_strategy, thresholds)
    def test_prefix_filter_admissible(self, a, b, t):
        """Matching pairs always share a probing-prefix token."""
        if not a or not b or jaccard(a, b) < t:
            return
        pa = set(a[: probe_prefix_length(len(a), t)])
        pb = set(b[: probe_prefix_length(len(b), t)])
        assert pa & pb, "prefix filter would prune a true match"

    @given(doc_strategy, doc_strategy, thresholds)
    def test_index_prefix_admissible_for_shorter_record(self, a, b, t):
        """With |b| <= |a|: probe prefix of a intersects index prefix of b."""
        if not a or not b or len(b) > len(a) or jaccard(a, b) < t:
            return
        pa = set(a[: probe_prefix_length(len(a), t)])
        ib = set(b[: index_prefix_length(len(b), t)])
        assert pa & ib, "index prefix would prune a true match"

    def test_position_upper_bound(self):
        # 3 tokens left in each record after the current positions.
        assert position_upper_bound(5, 2, 6, 3, 1) == 4


class TestSuffixFilter:
    @given(doc_strategy, doc_strategy, st.integers(0, 30))
    @settings(max_examples=300)
    def test_lower_bounds_true_hamming(self, a, b, hmax):
        """The filter never overstates: result <= true Hamming distance,
        OR the result exceeds hmax only when the true distance does."""
        true_hamming = len(set(a) ^ set(b))
        bound = suffix_filter(a, b, hmax)
        if bound > hmax:
            assert true_hamming > hmax, (
                f"suffix filter over-pruned: bound {bound} > hmax {hmax} "
                f"but true H = {true_hamming}"
            )

    @given(doc_strategy)
    def test_identical_records_zero(self, a):
        assert suffix_filter(a, a, len(a) * 2) <= 0 + 0

    def test_disjoint_records(self):
        a, b = (1, 2, 3), (4, 5, 6)
        assert suffix_filter(a, b, 100) <= 6  # true Hamming distance

    @given(doc_strategy, doc_strategy)
    def test_symmetric_conclusion(self, a, b):
        hmax = len(a) + len(b)
        # With a permissive budget, both directions stay within it.
        assert suffix_filter(a, b, hmax) <= hmax
        assert suffix_filter(b, a, hmax) <= hmax
