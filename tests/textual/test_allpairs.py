"""ALL-PAIRS join against the quadratic oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.textual.allpairs import (
    all_pairs_rs_join,
    all_pairs_self_join,
    naive_rs_join,
    naive_self_join,
)

doc_strategy = st.sets(st.integers(0, 30), min_size=1, max_size=10).map(
    lambda s: tuple(sorted(s))
)
collection = st.lists(doc_strategy, max_size=25)
thresholds = st.sampled_from([0.2, 0.5, 0.75, 1.0])


@given(collection, thresholds)
@settings(max_examples=100, deadline=None)
def test_self_join_matches_oracle(docs, t):
    assert set(all_pairs_self_join(docs, t)) == set(naive_self_join(docs, t))


@given(collection, collection, thresholds)
@settings(max_examples=100, deadline=None)
def test_rs_join_matches_oracle(docs_r, docs_s, t):
    assert set(all_pairs_rs_join(docs_r, docs_s, t)) == set(
        naive_rs_join(docs_r, docs_s, t)
    )


def test_oracle_skips_empty_docs():
    assert naive_self_join([(), ()], 0.5) == []
    assert naive_rs_join([()], [(1,)], 0.5) == []
