"""PPJOIN / PPJOIN+ joins against the quadratic oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.textual.allpairs import naive_rs_join, naive_self_join
from repro.textual.ppjoin import (
    ppjoin_plus_rs_join,
    ppjoin_plus_self_join,
    ppjoin_rs_join,
    ppjoin_self_join,
    similarity_rs_join,
    similarity_self_join,
)

doc_strategy = st.sets(st.integers(0, 30), min_size=1, max_size=10).map(
    lambda s: tuple(sorted(s))
)
collection = st.lists(doc_strategy, max_size=25)
thresholds = st.sampled_from([0.2, 1 / 3, 0.5, 0.6, 0.75, 0.9, 1.0])


class TestSelfJoin:
    @given(collection, thresholds)
    @settings(max_examples=120, deadline=None)
    def test_ppjoin_matches_oracle(self, docs, t):
        assert set(ppjoin_self_join(docs, t)) == set(naive_self_join(docs, t))

    @given(collection, thresholds)
    @settings(max_examples=120, deadline=None)
    def test_ppjoin_plus_matches_oracle(self, docs, t):
        assert set(ppjoin_plus_self_join(docs, t)) == set(naive_self_join(docs, t))

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            similarity_self_join([(1,)], 0.0)
        with pytest.raises(ValueError):
            similarity_self_join([(1,)], 1.5)

    def test_empty_collection(self):
        assert ppjoin_self_join([], 0.5) == []

    def test_empty_docs_never_join(self):
        docs = [(), (), (1, 2)]
        assert ppjoin_self_join(docs, 0.5) == []

    def test_identical_docs_join_at_one(self):
        docs = [(1, 2, 3), (1, 2, 3), (1, 2)]
        assert set(ppjoin_self_join(docs, 1.0)) == {(0, 1)}

    def test_pairs_ordered(self):
        docs = [(1, 2, 3, 4), (1, 2, 3)]
        for i, j in ppjoin_self_join(docs, 0.5):
            assert i < j

    def test_pair_predicate_filters(self):
        docs = [(1, 2), (1, 2), (1, 2)]
        out = ppjoin_self_join(docs, 1.0, pair_predicate=lambda i, j: (i + j) % 2 == 1)
        assert set(out) == {(0, 1), (1, 2)}

    def test_skip_pair_suppresses_verification(self):
        docs = [(1, 2), (1, 2)]
        assert ppjoin_self_join(docs, 1.0, skip_pair=lambda i, j: True) == []


class TestRSJoin:
    @given(collection, collection, thresholds)
    @settings(max_examples=120, deadline=None)
    def test_ppjoin_matches_oracle(self, docs_r, docs_s, t):
        assert set(ppjoin_rs_join(docs_r, docs_s, t)) == set(
            naive_rs_join(docs_r, docs_s, t)
        )

    @given(collection, collection, thresholds)
    @settings(max_examples=120, deadline=None)
    def test_ppjoin_plus_matches_oracle(self, docs_r, docs_s, t):
        assert set(ppjoin_plus_rs_join(docs_r, docs_s, t)) == set(
            naive_rs_join(docs_r, docs_s, t)
        )

    def test_empty_side(self):
        assert ppjoin_rs_join([], [(1,)], 0.5) == []
        assert ppjoin_rs_join([(1,)], [], 0.5) == []

    def test_result_indices_are_rs_oriented(self):
        docs_r = [(1, 2, 3)]
        docs_s = [(9,), (1, 2, 3)]
        assert ppjoin_rs_join(docs_r, docs_s, 1.0) == [(0, 1)]

    def test_swap_sides_consistent(self):
        """Indexing side choice must not change the (r, s) orientation."""
        small = [(1, 2)]
        large = [(1, 2), (3, 4), (1, 2, 3)]
        out_a = set(ppjoin_rs_join(small, large, 0.5))
        out_b = {(j, i) for i, j in ppjoin_rs_join(large, small, 0.5)}
        assert out_a == out_b

    def test_predicate_receives_rs_indices(self):
        docs_r = [(1, 2)]
        docs_s = [(1, 2), (1, 2)]
        seen = []

        def pred(i, j):
            seen.append((i, j))
            return True

        ppjoin_rs_join(docs_r, docs_s, 1.0, pair_predicate=pred)
        assert all(i == 0 and j in (0, 1) for i, j in seen)


class TestUglyThresholds:
    """Regression: thresholds that are not 'nice' floats (e.g. produced by
    accumulated arithmetic) must still give exact-Jaccard semantics."""

    UGLY = [0.5000000000000002, 0.49999999999999994, 0.3333333333333337, 0.6000000000000001]

    @given(collection, st.sampled_from(UGLY))
    @settings(max_examples=80, deadline=None)
    def test_self_join_exact_semantics(self, docs, t):
        assert set(ppjoin_self_join(docs, t)) == set(naive_self_join(docs, t))

    @given(collection, collection, st.floats(0.05, 1.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_rs_join_arbitrary_float_thresholds(self, docs_r, docs_s, t):
        assert set(ppjoin_rs_join(docs_r, docs_s, t)) == set(
            naive_rs_join(docs_r, docs_s, t)
        )


class TestEngineVariants:
    @given(collection, thresholds)
    @settings(max_examples=60, deadline=None)
    def test_positional_off_still_exact(self, docs, t):
        got = set(similarity_self_join(docs, t, positional=False))
        assert got == set(naive_self_join(docs, t))

    @given(collection, collection, thresholds)
    @settings(max_examples=60, deadline=None)
    def test_rs_positional_off_still_exact(self, docs_r, docs_s, t):
        got = set(similarity_rs_join(docs_r, docs_s, t, positional=False))
        assert got == set(naive_rs_join(docs_r, docs_s, t))
