"""Property tests: the verify-layer filter bounds are *admissible*.

Every filter in :mod:`repro.textual.verify` is a pruning bound: it may
admit a candidate pair that exact verification later rejects, but it must
never reject a pair that brute-force Jaccard accepts — otherwise the
joins silently lose results.  Randomized canonical documents (sorted
tuples of unique token ids) probe exactly that one-sided contract for
``required_overlap``, ``probe_prefix_length``, ``index_prefix_length``,
``position_upper_bound`` and ``suffix_filter``, plus the exactness of the
verification kernels themselves.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.textual.verify import (
    index_prefix_length,
    jaccard,
    overlap,
    overlap_at_least,
    overlap_exact_or_pruned,
    position_upper_bound,
    probe_prefix_length,
    required_overlap,
    suffix_filter,
    verify_jaccard,
)

#: Canonical documents: sorted tuples of unique token ids.  A small token
#: universe forces frequent overlaps, which is where bounds get tight.
docs = st.lists(
    st.integers(min_value=0, max_value=40), max_size=14, unique=True
).map(lambda tokens: tuple(sorted(tokens)))

nonempty_docs = st.lists(
    st.integers(min_value=0, max_value=40), min_size=1, max_size=14, unique=True
).map(lambda tokens: tuple(sorted(tokens)))

thresholds = st.floats(min_value=0.05, max_value=0.95)


@settings(max_examples=300, deadline=None)
@given(doc_a=docs, doc_b=docs, threshold=thresholds)
def test_required_overlap_is_admissible(doc_a, doc_b, threshold):
    # Jaccard >= t forces the overlap to reach alpha — a pair at the
    # threshold can never be pruned by the overlap bound.  Two empty
    # documents are out of scope: jaccard defines them as 1.0 but every
    # join kernel drops empty documents before any filter runs.
    if not doc_a and not doc_b:
        return
    if jaccard(doc_a, doc_b) >= threshold:
        alpha = required_overlap(threshold, len(doc_a), len(doc_b))
        assert overlap(doc_a, doc_b) >= alpha


@settings(max_examples=300, deadline=None)
@given(doc_a=nonempty_docs, doc_b=nonempty_docs, threshold=thresholds)
def test_probe_prefixes_share_a_token(doc_a, doc_b, threshold):
    # The prefix-filtering principle: matching pairs collide within
    # their probing prefixes, so prefix indexing misses no result.
    if jaccard(doc_a, doc_b) >= threshold:
        prefix_a = doc_a[: probe_prefix_length(len(doc_a), threshold)]
        prefix_b = doc_b[: probe_prefix_length(len(doc_b), threshold)]
        assert set(prefix_a) & set(prefix_b)


@settings(max_examples=300, deadline=None)
@given(doc_a=nonempty_docs, doc_b=nonempty_docs, threshold=thresholds)
def test_index_prefix_valid_for_length_ordered_self_join(
    doc_a, doc_b, threshold
):
    # In a length-ordered self-join the indexed record is never longer
    # than the prober, which licenses the shorter indexing prefix; the
    # probing side must still scan its full probing prefix.
    shorter, longer = sorted((doc_a, doc_b), key=len)
    if jaccard(shorter, longer) >= threshold:
        index_prefix = shorter[: index_prefix_length(len(shorter), threshold)]
        probe_prefix = longer[: probe_prefix_length(len(longer), threshold)]
        assert set(index_prefix) & set(probe_prefix)


@settings(max_examples=300, deadline=None)
@given(doc_a=nonempty_docs, doc_b=nonempty_docs)
def test_position_upper_bound_dominates_true_overlap(doc_a, doc_b):
    # At any shared token, tokens below it sit in both prefixes and
    # tokens above it in both suffixes, so the bound decomposition holds.
    common = sorted(set(doc_a) & set(doc_b))
    if not common:
        return
    for token in common:
        pos_a, pos_b = doc_a.index(token), doc_b.index(token)
        acc = overlap(doc_a[:pos_a], doc_b[:pos_b])
        bound = position_upper_bound(len(doc_a), pos_a, len(doc_b), pos_b, acc)
        assert overlap(doc_a, doc_b) <= bound


@settings(max_examples=300, deadline=None)
@given(
    suffix_a=docs,
    suffix_b=docs,
    hamming_max=st.integers(min_value=0, max_value=30),
)
def test_suffix_filter_never_exceeds_true_hamming(
    suffix_a, suffix_b, hamming_max
):
    # The divide-and-conquer estimate is a lower bound on the true
    # Hamming distance whatever the early-exit budget, so a candidate
    # whose true distance is within budget can never be disqualified.
    true_hamming = (
        len(suffix_a) + len(suffix_b) - 2 * overlap(suffix_a, suffix_b)
    )
    assert suffix_filter(suffix_a, suffix_b, hamming_max) <= true_hamming


@settings(max_examples=300, deadline=None)
@given(doc_a=docs, doc_b=docs, threshold=thresholds)
def test_verify_jaccard_matches_brute_force(doc_a, doc_b, threshold):
    # Same empty-pair exclusion as above: verification is only ever
    # reached for documents that survived the kernels' emptiness check.
    if not doc_a and not doc_b:
        return
    alpha = required_overlap(threshold, len(doc_a), len(doc_b))
    assert verify_jaccard(doc_a, doc_b, threshold, alpha) == (
        jaccard(doc_a, doc_b) >= threshold
    )


@settings(max_examples=300, deadline=None)
@given(doc_a=docs, doc_b=docs, alpha=st.integers(min_value=0, max_value=20))
def test_overlap_kernels_agree_with_exact_overlap(doc_a, doc_b, alpha):
    exact = overlap(doc_a, doc_b)
    assert overlap_at_least(doc_a, doc_b, alpha) == (exact >= alpha)
    bounded = overlap_exact_or_pruned(doc_a, doc_b, alpha)
    if bounded >= 0:
        assert bounded == exact
    else:
        assert exact < alpha
