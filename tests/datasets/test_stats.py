"""Dataset profiling (Table 1 metrics)."""

import pytest

from repro import STDataset
from repro.datasets.stats import DatasetStats, dataset_stats, format_table1


@pytest.fixture
def dataset():
    return STDataset.from_records(
        [
            ("a", 0, 0, {"x", "y"}),
            ("a", 1, 1, {"x"}),
            ("b", 2, 2, {"x", "y", "z"}),
        ]
    )


class TestDatasetStats:
    def test_counts(self, dataset):
        s = dataset_stats(dataset, name="t")
        assert s.num_objects == 3
        assert s.num_users == 2

    def test_tokens_per_object(self, dataset):
        s = dataset_stats(dataset)
        assert s.tokens_per_object[0] == pytest.approx(2.0)

    def test_objects_per_token(self, dataset):
        s = dataset_stats(dataset)
        # x appears in 3 objects, y in 2, z in 1 -> mean 2.
        assert s.objects_per_token[0] == pytest.approx(2.0)

    def test_objects_per_user(self, dataset):
        s = dataset_stats(dataset)
        assert s.objects_per_user[0] == pytest.approx(1.5)
        assert s.objects_per_user[1] == pytest.approx(0.5)

    def test_empty_dataset(self):
        s = dataset_stats(STDataset.from_records([]))
        assert s.num_objects == 0
        assert s.tokens_per_object == (0.0, 0.0)


class TestFormatTable1:
    def test_contains_rows_and_header(self, dataset):
        s = dataset_stats(dataset, name="demo")
        text = format_table1([s])
        assert "Dataset" in text
        assert "demo" in text
        assert "2.00" in text
