"""TSV persistence."""

import pytest

from repro import STDataset
from repro.datasets.loaders import load_tsv, save_tsv
from repro.datasets.synthetic import TWITTER_LIKE, generate_dataset


class TestRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        original = generate_dataset(TWITTER_LIKE, seed=3, num_users=12)
        path = tmp_path / "data.tsv"
        written = save_tsv(original, path)
        assert written == original.num_objects

        loaded = load_tsv(path)
        assert loaded.num_objects == original.num_objects
        assert loaded.num_users == original.num_users
        # Object-level content survives (users and keywords as strings).
        orig = sorted(
            (str(o.user), o.x, o.y, tuple(sorted(map(str, original.vocab.decode(o.doc)))))
            for o in original.objects
        )
        back = sorted(
            (str(o.user), o.x, o.y, tuple(sorted(map(str, loaded.vocab.decode(o.doc)))))
            for o in loaded.objects
        )
        assert orig == back

    def test_coordinates_exact(self, tmp_path):
        ds = STDataset.from_records([("u", 0.1234567890123456, 1e-9, {"k"})])
        path = tmp_path / "p.tsv"
        save_tsv(ds, path)
        loaded = load_tsv(path)
        assert loaded.objects[0].x == 0.1234567890123456
        assert loaded.objects[0].y == 1e-9


class TestTemporalRoundtrip:
    def test_roundtrip(self, tmp_path):
        from repro.core.temporal import TemporalDataset
        from repro.datasets.loaders import load_temporal_tsv, save_temporal_tsv

        tds = TemporalDataset.from_records(
            [
                ("u", 0.1, 0.2, {"a", "b"}, 100.5),
                ("v", 0.3, 0.4, {"c"}, 200.25),
            ]
        )
        path = tmp_path / "t.tsv"
        assert save_temporal_tsv(tds, path) == 2
        back = load_temporal_tsv(path)
        assert back.dataset.num_objects == 2
        times = sorted(back.timestamps)
        assert times == [100.5, 200.25]

    def test_malformed_temporal_line(self, tmp_path):
        from repro.datasets.loaders import load_temporal_tsv

        path = tmp_path / "bad.tsv"
        path.write_text("u\t0.0\t0.0\ta\n")  # missing timestamp column
        with pytest.raises(ValueError, match="expected 5"):
            load_temporal_tsv(path)


class TestValidation:
    def test_reserved_char_in_keyword(self, tmp_path):
        ds = STDataset.from_records([("u", 0, 0, {"bad,token"})])
        with pytest.raises(ValueError):
            save_tsv(ds, tmp_path / "x.tsv")

    def test_reserved_char_in_user(self, tmp_path):
        ds = STDataset.from_records([("bad\tuser", 0, 0, {"k"})])
        with pytest.raises(ValueError):
            save_tsv(ds, tmp_path / "x.tsv")

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("only\ttwo\n")
        with pytest.raises(ValueError, match="expected 4"):
            load_tsv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ok.tsv"
        path.write_text("u\t0.0\t0.0\ta,b\n\nv\t1.0\t1.0\tc\n")
        ds = load_tsv(path)
        assert ds.num_objects == 2

    def test_empty_keyword_list(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("u\t0.0\t0.0\t\n")
        ds = load_tsv(path)
        assert ds.objects[0].doc == ()
