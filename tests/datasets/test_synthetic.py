"""Synthetic dataset generators."""

import pytest

from repro.datasets.stats import dataset_stats
from repro.datasets.synthetic import (
    FLICKR_LIKE,
    GEOTEXT_LIKE,
    PRESETS,
    TWITTER_LIKE,
    DatasetSpec,
    generate_dataset,
    preset,
)


class TestPresets:
    def test_registry(self):
        assert set(PRESETS) == {"flickr", "twitter", "geotext"}
        assert preset("flickr") is FLICKR_LIKE

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            preset("instagram")

    def test_scaled_users(self):
        spec = TWITTER_LIKE.scaled(num_users=10)
        assert spec.num_users == 10
        assert TWITTER_LIKE.num_users != 10  # original untouched

    def test_scaled_objects(self):
        spec = TWITTER_LIKE.scaled(objects_scale=0.5)
        assert spec.objects_per_user_mean == pytest.approx(
            TWITTER_LIKE.objects_per_user_mean * 0.5
        )


class TestGeneration:
    def test_deterministic(self):
        a = generate_dataset(GEOTEXT_LIKE, seed=7, num_users=20)
        b = generate_dataset(GEOTEXT_LIKE, seed=7, num_users=20)
        assert a.num_objects == b.num_objects
        assert [(o.user, o.x, o.y, o.doc) for o in a.objects] == [
            (o.user, o.x, o.y, o.doc) for o in b.objects
        ]

    def test_different_seeds_differ(self):
        a = generate_dataset(GEOTEXT_LIKE, seed=1, num_users=20)
        b = generate_dataset(GEOTEXT_LIKE, seed=2, num_users=20)
        assert [(o.x, o.y) for o in a.objects] != [(o.x, o.y) for o in b.objects]

    def test_user_count(self):
        ds = generate_dataset(TWITTER_LIKE, seed=0, num_users=15)
        assert ds.num_users == 15

    def test_every_object_has_keywords(self):
        ds = generate_dataset(FLICKR_LIKE, seed=0, num_users=15)
        assert all(len(o.doc) >= 1 for o in ds.objects)

    def test_locations_within_extent(self):
        for spec in (FLICKR_LIKE, TWITTER_LIKE, GEOTEXT_LIKE):
            ds = generate_dataset(spec, seed=0, num_users=10)
            for o in ds.objects:
                assert 0.0 <= o.x <= spec.extent
                assert 0.0 <= o.y <= spec.extent

    def test_objects_scale_shrinks(self):
        full = generate_dataset(TWITTER_LIKE, seed=0, num_users=30)
        half = generate_dataset(TWITTER_LIKE, seed=0, num_users=30, objects_scale=0.3)
        assert half.num_objects < full.num_objects


class TestCalibration:
    """The Table 1 shape: relative ordering of the per-dataset statistics."""

    @pytest.fixture(scope="class")
    def stats(self):
        return {
            name: dataset_stats(
                generate_dataset(spec, seed=1, num_users=120), name=name
            )
            for name, spec in PRESETS.items()
        }

    def test_tokens_per_object_ordering(self, stats):
        # Flickr >> Twitter > GeoText, as in Table 1.
        assert (
            stats["flickr"].tokens_per_object[0]
            > stats["twitter"].tokens_per_object[0]
            > stats["geotext"].tokens_per_object[0]
        )

    def test_tokens_per_object_magnitudes(self, stats):
        assert stats["twitter"].tokens_per_object[0] == pytest.approx(2.08, abs=0.6)
        assert stats["geotext"].tokens_per_object[0] == pytest.approx(1.64, abs=0.5)
        assert stats["flickr"].tokens_per_object[0] > 3.5

    def test_objects_per_user_heavy_tailed(self, stats):
        # Std comparable to or above the mean (lognormal): Twitter/Flickr.
        for name in ("twitter", "flickr"):
            mean, std = stats[name].objects_per_user
            assert std > 0.5 * mean

    def test_lognormal_invalid_mean(self):
        from repro.datasets.synthetic import _lognormal_params

        with pytest.raises(ValueError):
            _lognormal_params(0.0, 1.0)
