"""Real-data ingestion: tokenizer and column-mapped loader."""

import pytest

from repro.datasets.ingest import DEFAULT_STOPWORDS, load_delimited, simple_tokenize


class TestSimpleTokenize:
    def test_basic_extraction(self):
        tokens = simple_tokenize("Great coffee at the Soho market!")
        assert tokens == {"great", "coffee", "soho", "market"}

    def test_stopwords_dropped(self):
        assert simple_tokenize("the and of") == set()

    def test_hashtags_and_mentions_survive(self):
        tokens = simple_tokenize("watching #arsenal with @friend")
        assert "#arsenal" in tokens
        assert "@friend" in tokens

    def test_numbers_dropped(self):
        assert simple_tokenize("call 555 1234") == {"call"}

    def test_short_tokens_dropped(self):
        assert simple_tokenize("a b cd") == {"cd"}

    def test_case_folding(self):
        assert simple_tokenize("COFFEE Coffee coffee") == {"coffee"}

    def test_custom_stopwords(self):
        tokens = simple_tokenize(
            "coffee tea", stopwords=frozenset({"coffee"} | set(DEFAULT_STOPWORDS))
        )
        assert tokens == {"tea"}

    def test_empty_text(self):
        assert simple_tokenize("") == set()


class TestLoadDelimited:
    def write(self, tmp_path, content, name="data.txt"):
        path = tmp_path / name
        path.write_text(content)
        return path

    def test_tsv_layout(self, tmp_path):
        path = self.write(
            tmp_path,
            "alice\t0.5\t0.6\tgreat coffee here\n"
            "bob\t0.7\t0.8\tfootball tonight\n",
        )
        ds = load_delimited(path, user_col=0, x_col=1, y_col=2, text_col=3)
        assert ds.num_objects == 2
        assert set(ds.users) == {"alice", "bob"}
        obj = ds.user_objects("alice")[0]
        assert (obj.x, obj.y) == (0.5, 0.6)
        assert ds.vocab.decode(obj.doc) == frozenset({"great", "coffee", "here"})

    def test_csv_with_header_and_swapped_columns(self, tmp_path):
        path = self.write(
            tmp_path,
            "user,lat,lon,text\nalice,51.5,-0.12,mind the gap\n",
        )
        ds = load_delimited(
            path,
            delimiter=",",
            user_col=0,
            x_col=2,  # lon is x
            y_col=1,
            text_col=3,
            skip_header=True,
        )
        assert ds.num_objects == 1
        assert ds.objects[0].x == -0.12

    def test_malformed_lines_skipped_by_default(self, tmp_path):
        path = self.write(
            tmp_path,
            "alice\t0.5\t0.6\tcoffee time\n"
            "broken line\n"
            "bob\tNaN-ish\t0.8\tfootball match\n"
            "carol\t0.1\t0.2\tmarket day\n",
        )
        ds = load_delimited(path, user_col=0, x_col=1, y_col=2, text_col=3)
        assert set(ds.users) == {"alice", "carol"}

    def test_malformed_lines_raise_when_asked(self, tmp_path):
        path = self.write(tmp_path, "broken line\n")
        with pytest.raises(ValueError, match="expected at least"):
            load_delimited(
                path, user_col=0, x_col=1, y_col=2, text_col=3, on_error="raise"
            )

    def test_bad_coordinates_raise_when_asked(self, tmp_path):
        path = self.write(tmp_path, "a\tnope\t0.5\tcoffee here\n")
        with pytest.raises(ValueError, match="unparseable"):
            load_delimited(
                path, user_col=0, x_col=1, y_col=2, text_col=3, on_error="raise"
            )

    def test_keywordless_objects_dropped(self, tmp_path):
        path = self.write(tmp_path, "a\t0.1\t0.2\tthe of and\n")
        ds = load_delimited(path, user_col=0, x_col=1, y_col=2, text_col=3)
        assert ds.num_objects == 0

    def test_custom_tokenizer(self, tmp_path):
        path = self.write(tmp_path, "a\t0.1\t0.2\tX;Y;Z\n")
        ds = load_delimited(
            path,
            user_col=0,
            x_col=1,
            y_col=2,
            text_col=3,
            tokenizer=lambda text: text.split(";"),
        )
        assert ds.vocab.decode(ds.objects[0].doc) == frozenset({"X", "Y", "Z"})

    def test_invalid_on_error(self, tmp_path):
        path = self.write(tmp_path, "a\t0.1\t0.2\tcoffee\n")
        with pytest.raises(ValueError):
            load_delimited(
                path, user_col=0, x_col=1, y_col=2, text_col=3, on_error="explode"
            )

    def test_loaded_dataset_joins(self, tmp_path):
        """End to end: ingest a tiny 'tweet export' and join it."""
        from repro import stps_join

        lines = []
        for i in range(4):
            lines.append(f"ana\t{0.1 + i * 1e-4}\t0.1\tmorning coffee at soho market\n")
            lines.append(f"ben\t{0.1 + i * 1e-4}\t0.1001\tbest coffee in soho today\n")
        path = self.write(tmp_path, "".join(lines))
        ds = load_delimited(path, user_col=0, x_col=1, y_col=2, text_col=3)
        pairs = stps_join(ds, eps_loc=0.001, eps_doc=0.3, eps_user=0.5)
        assert [(p.user_a, p.user_b) for p in pairs] == [("ana", "ben")]


class TestNonFiniteCoordinates:
    def write(self, tmp_path, content):
        path = tmp_path / "raw.txt"
        path.write_text(content)
        return path

    @pytest.mark.parametrize("coord", ["nan", "inf", "-inf", "NaN", "Infinity"])
    def test_skip_mode_drops_line(self, tmp_path, coord):
        path = self.write(
            tmp_path,
            f"a\t{coord}\t0.2\tcoffee soho\n" "b\t0.1\t0.2\tcoffee soho\n",
        )
        ds = load_delimited(path, user_col=0, x_col=1, y_col=2, text_col=3)
        assert ds.num_objects == 1
        assert ds.users == ["b"]

    def test_raise_mode_is_structured(self, tmp_path):
        from repro.errors import DatasetValidationError

        path = self.write(tmp_path, "a\t0.1\tinf\tcoffee soho\n")
        with pytest.raises(DatasetValidationError, match="non-finite") as err:
            load_delimited(
                path, user_col=0, x_col=1, y_col=2, text_col=3, on_error="raise"
            )
        assert err.value.source == str(path)
        assert "line 1" in err.value.problems[0]

    def test_malformed_line_raise_mode_is_structured(self, tmp_path):
        from repro.errors import DatasetValidationError

        path = self.write(tmp_path, "a\t0.1\n")
        with pytest.raises(DatasetValidationError):
            load_delimited(
                path, user_col=0, x_col=1, y_col=2, text_col=3, on_error="raise"
            )
