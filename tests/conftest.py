"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import STDataset


@pytest.fixture
def tiny_dataset() -> STDataset:
    """The Figure 1 scenario: u1 and u3 are the only similar pair.

    With ``eps_loc = 0.005`` and ``eps_doc = 0.3``: both objects of u1
    match objects of u3 (co-located, one shared keyword out of three) and
    two of u3's three objects match back, so sigma(u1, u3) = 4/5; every
    pair involving u2 is either spatially or textually apart (sigma 0).
    """
    records = [
        ("u1", 0.10, 0.10, {"shop", "jeans"}),
        ("u1", 0.50, 0.50, {"tube", "ride"}),
        ("u2", 0.90, 0.10, {"football", "match", "stadium"}),
        ("u2", 0.52, 0.50, {"hurry", "tube", "time"}),
        ("u2", 0.90, 0.12, {"football", "derby"}),
        ("u3", 0.101, 0.101, {"shop", "market"}),
        ("u3", 0.70, 0.90, {"thames", "bridge"}),
        ("u3", 0.501, 0.501, {"bus", "ride"}),
    ]
    return STDataset.from_records(records)
