"""Smoke tests: the example scripts must run to completion.

Only the fast examples run in the test suite; the data-generating ones
(`twitter_user_similarity`, `flickr_poi_tuning`, `substrate_tour`,
`streaming_updates`, `spatial_keyword_queries`) are exercised by their own
assertions when run manually and take tens of seconds, so here they are
import-checked only.
"""

import importlib.util
import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST = ["quickstart.py", "pointset_measures.py"]
ALL = sorted(p.name for p in EXAMPLES.glob("*.py"))


@pytest.mark.parametrize("name", FAST)
def test_fast_example_runs(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


@pytest.mark.parametrize("name", ALL)
def test_example_compiles(name):
    """Every example must at least parse and import-resolve its modules."""
    source = (EXAMPLES / name).read_text()
    compile(source, str(EXAMPLES / name), "exec")


def test_every_example_documented_in_readme():
    readme = (EXAMPLES.parent / "README.md").read_text()
    for name in ALL:
        assert name in readme, f"examples/{name} missing from README"
