"""Tests for geometry primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spatial.geometry import Point, Rect, bounding_rect, euclidean, euclidean_sq

coords = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


def make_rect(a: float, b: float, c: float, d: float) -> Rect:
    return Rect(min(a, b), min(c, d), max(a, b), max(c, d))


rects = st.builds(make_rect, coords, coords, coords, coords)


class TestDistances:
    def test_euclidean_matches_hypot(self):
        assert euclidean(0, 0, 3, 4) == pytest.approx(5.0)

    def test_euclidean_sq_is_square(self):
        assert euclidean_sq(1, 1, 4, 5) == pytest.approx(25.0)

    @given(coords, coords, coords, coords)
    def test_symmetry(self, ax, ay, bx, by):
        assert euclidean(ax, ay, bx, by) == pytest.approx(euclidean(bx, by, ax, ay))

    @given(coords, coords)
    def test_identity(self, x, y):
        assert euclidean(x, y, x, y) == 0.0


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_sq(self):
        assert Point(0, 0).distance_sq(Point(3, 4)) == pytest.approx(25.0)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1  # type: ignore[misc]


class TestRectConstruction:
    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 1, 0)

    def test_from_point_is_degenerate(self):
        r = Rect.from_point(2.0, 3.0)
        assert r.area() == 0.0
        assert r.contains_point(2.0, 3.0)

    def test_from_points(self):
        r = Rect.from_points([(0, 5), (2, 1), (-1, 3)])
        assert r == Rect(-1, 1, 2, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.from_points([])

    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=20))
    def test_from_points_contains_all(self, pts):
        r = Rect.from_points(pts)
        assert all(r.contains_point(x, y) for x, y in pts)


class TestRectPredicates:
    @given(rects, rects)
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(rects, rects)
    def test_intersection_consistent_with_intersects(self, a, b):
        inter = a.intersection(b)
        assert (inter is not None) == a.intersects(b)
        if inter is not None:
            assert a.contains_rect(inter)
            assert b.contains_rect(inter)

    @given(rects, rects)
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a)
        assert u.contains_rect(b)

    @given(rects)
    def test_self_containment(self, r):
        assert r.contains_rect(r)
        assert r.intersects(r)

    def test_touching_rects_intersect(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 1, 2, 2))


class TestRectMeasures:
    def test_area_perimeter(self):
        r = Rect(0, 0, 2, 3)
        assert r.area() == 6.0
        assert r.perimeter() == 10.0
        assert r.center() == (1.0, 1.5)

    @given(rects, rects)
    def test_enlargement_nonnegative(self, a, b):
        assert a.enlargement(b) >= -1e-9


class TestRectExtend:
    def test_extend_grows_every_side(self):
        r = Rect(0, 0, 1, 1).extend(0.5)
        assert r == Rect(-0.5, -0.5, 1.5, 1.5)

    def test_extend_zero_is_identity(self):
        r = Rect(0, 0, 1, 1)
        assert r.extend(0.0) == r

    def test_extend_negative_raises(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).extend(-0.1)

    @given(rects, st.floats(0, 10, allow_nan=False))
    def test_extend_contains_original(self, r, eps):
        assert r.extend(eps).contains_rect(r)


class TestRectDistances:
    def test_min_distance_to_inside_point_is_zero(self):
        assert Rect(0, 0, 1, 1).min_distance_to_point(0.5, 0.5) == 0.0

    def test_min_distance_to_corner_point(self):
        assert Rect(0, 0, 1, 1).min_distance_to_point(4, 5) == pytest.approx(5.0)

    def test_min_distance_between_rects(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(4, 5, 6, 7)
        assert a.min_distance(b) == pytest.approx(5.0)

    @given(rects, rects)
    def test_min_distance_zero_iff_intersecting(self, a, b):
        assert (a.min_distance(b) == 0.0) == a.intersects(b)

    @given(rects, st.floats(0, 5, allow_nan=False), rects)
    def test_extension_intersection_vs_distance(self, a, eps, b):
        # Extending each rect by eps/2 relaxes each *axis* gap by eps, so
        # the extended rects intersect iff both axis gaps are <= eps — a
        # Chebyshev condition.  Euclidean distance < eps is strictly
        # stronger (it bounds the hypotenuse), so it implies intersection
        # but the converse fails near corners.  Checked away from the
        # float boundary, where the formulations can round differently.
        from hypothesis import assume

        distance = a.min_distance(b)
        extended = a.extend(eps / 2).intersects(b.extend(eps / 2))
        if distance < eps * (1.0 - 1e-9):
            assert extended
        gap_x = max(a.min_x - b.max_x, b.min_x - a.max_x, 0.0)
        gap_y = max(a.min_y - b.max_y, b.min_y - a.max_y, 0.0)
        chebyshev = max(gap_x, gap_y)
        assume(abs(chebyshev - eps) > 1e-9 * max(1.0, eps))
        assert extended == (chebyshev <= eps)


class TestBoundingRect:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_rect([])

    def test_covers_all(self):
        rs = [Rect(0, 0, 1, 1), Rect(2, -1, 3, 0.5)]
        u = bounding_rect(rs)
        assert all(u.contains_rect(r) for r in rs)
