"""Tests for the R-tree: bulk load, dynamic insert, queries, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import Rect
from repro.spatial.rtree import RTree


def random_points(n: int, seed: int = 0, extent: float = 1.0):
    rng = np.random.default_rng(seed)
    return [
        (float(x), float(y), i)
        for i, (x, y) in enumerate(rng.uniform(0, extent, (n, 2)))
    ]


points_strategy = st.lists(
    st.tuples(
        st.floats(0, 1, allow_nan=False),
        st.floats(0, 1, allow_nan=False),
    ),
    min_size=0,
    max_size=120,
)


class TestConstruction:
    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            RTree(fanout=1)
        with pytest.raises(ValueError):
            RTree(fanout=10, min_fill=0.9)

    def test_empty_bulk_load(self):
        tree = RTree.bulk_load([], fanout=8)
        assert len(tree) == 0
        assert tree.range_query(Rect(0, 0, 1, 1)) == []
        assert tree.leaves() == []

    def test_single_point(self):
        tree = RTree.bulk_load([(0.5, 0.5, "a")], fanout=8)
        assert len(tree) == 1
        assert tree.range_query(Rect(0, 0, 1, 1)) == [(0.5, 0.5, "a")]

    @pytest.mark.parametrize("n", [1, 7, 8, 9, 64, 65, 500])
    def test_bulk_load_sizes_and_invariants(self, n):
        tree = RTree.bulk_load(random_points(n), fanout=8)
        assert len(tree) == n
        tree.validate()
        assert sum(len(leaf.entries) for leaf in tree.leaves()) == n

    def test_bulk_load_deterministic(self):
        pts = random_points(200, seed=3)
        a = RTree.bulk_load(list(pts), fanout=16)
        b = RTree.bulk_load(list(pts), fanout=16)
        assert [l.mbr for l in a.leaves()] == [l.mbr for l in b.leaves()]

    def test_height_grows_with_size(self):
        small = RTree.bulk_load(random_points(8), fanout=8)
        large = RTree.bulk_load(random_points(1000), fanout=8)
        assert large.height > small.height


class TestDynamicInsert:
    def test_insert_then_query(self):
        tree = RTree(fanout=4)
        pts = random_points(100, seed=1)
        for x, y, item in pts:
            tree.insert(x, y, item)
        tree.validate()
        assert len(tree) == 100
        q = Rect(0.25, 0.25, 0.75, 0.75)
        expected = {i for x, y, i in pts if q.contains_point(x, y)}
        assert {i for _, _, i in tree.range_query(q)} == expected

    def test_duplicate_locations(self):
        tree = RTree(fanout=4)
        for i in range(50):
            tree.insert(0.5, 0.5, i)
        tree.validate()
        assert len(tree.range_query(Rect.from_point(0.5, 0.5))) == 50

    @given(points_strategy)
    @settings(max_examples=30, deadline=None)
    def test_insert_matches_linear_scan(self, pts):
        tree = RTree(fanout=4)
        for i, (x, y) in enumerate(pts):
            tree.insert(x, y, i)
        q = Rect(0.2, 0.2, 0.8, 0.8)
        expected = {i for i, (x, y) in enumerate(pts) if q.contains_point(x, y)}
        assert {i for _, _, i in tree.range_query(q)} == expected


class TestQueries:
    def test_range_query_matches_scan(self):
        pts = random_points(400, seed=2)
        tree = RTree.bulk_load(pts, fanout=16)
        for q in (Rect(0, 0, 0.1, 0.1), Rect(0.3, 0.4, 0.9, 0.6), Rect(0, 0, 1, 1)):
            expected = {i for x, y, i in pts if q.contains_point(x, y)}
            assert {i for _, _, i in tree.range_query(q)} == expected

    def test_within_distance_matches_scan(self):
        pts = random_points(300, seed=4)
        tree = RTree.bulk_load(pts, fanout=16)
        cx, cy, eps = 0.5, 0.5, 0.12
        expected = {
            i for x, y, i in pts if (x - cx) ** 2 + (y - cy) ** 2 <= eps * eps
        }
        assert {i for _, _, i in tree.within_distance(cx, cy, eps)} == expected

    def test_within_distance_zero_radius(self):
        tree = RTree.bulk_load([(0.5, 0.5, "hit"), (0.6, 0.6, "miss")], fanout=4)
        assert [i for _, _, i in tree.within_distance(0.5, 0.5, 0.0)] == ["hit"]

    def test_nearest_matches_scan(self):
        pts = random_points(300, seed=9)
        tree = RTree.bulk_load(pts, fanout=16)
        qx, qy = 0.4, 0.6
        expected = sorted(
            ((x - qx) ** 2 + (y - qy) ** 2, i) for x, y, i in pts
        )[:7]
        got = tree.nearest(qx, qy, k=7)
        assert [i for _, _, i in got] == [i for _, i in expected]

    def test_nearest_k_exceeds_size(self):
        pts = random_points(5, seed=10)
        tree = RTree.bulk_load(pts, fanout=4)
        assert len(tree.nearest(0.5, 0.5, k=50)) == 5

    def test_nearest_empty_tree(self):
        tree = RTree.bulk_load([], fanout=4)
        assert tree.nearest(0.5, 0.5, k=3) == []

    def test_nearest_invalid_k(self):
        tree = RTree.bulk_load(random_points(5), fanout=4)
        import pytest as _pytest

        with _pytest.raises(ValueError):
            tree.nearest(0.5, 0.5, k=0)

    def test_iter_entries_complete(self):
        pts = random_points(77, seed=5)
        tree = RTree.bulk_load(pts, fanout=8)
        assert sorted(i for _, _, i in tree.iter_entries()) == list(range(77))


class TestLeaves:
    def test_leaf_ids_stable_and_dense(self):
        tree = RTree.bulk_load(random_points(200, seed=6), fanout=16)
        leaves = tree.leaves()
        assert [l.leaf_id for l in leaves] == list(range(len(leaves)))
        # Second call returns the same objects.
        assert tree.leaves() is leaves

    def test_leaves_respect_fanout(self):
        tree = RTree.bulk_load(random_points(500, seed=7), fanout=25)
        assert all(len(l.entries) <= 25 for l in tree.leaves())

    def test_fanout_controls_leaf_count(self):
        pts = random_points(600, seed=8)
        few = len(RTree.bulk_load(pts, fanout=200).leaves())
        many = len(RTree.bulk_load(pts, fanout=20).leaves())
        assert many > few

    def test_leaves_refresh_after_insert(self):
        tree = RTree(fanout=4)
        tree.insert(0.1, 0.1, 0)
        assert len(tree.leaves()) == 1
        for i in range(1, 30):
            tree.insert(i / 30, i / 30, i)
        leaves = tree.leaves()
        assert sum(len(l.entries) for l in leaves) == 30
