"""Tests for the uniform grid, including the PPJ-B snake-coverage invariant."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spatial.geometry import Rect
from repro.spatial.grid import UniformGrid


@pytest.fixture
def grid_5x4() -> UniformGrid:
    return UniformGrid(Rect(0, 0, 5, 4), 1.0)


class TestConstruction:
    def test_dimensions(self, grid_5x4):
        assert grid_5x4.ncols == 5
        assert grid_5x4.nrows == 4

    def test_non_divisible_extent_rounds_up(self):
        grid = UniformGrid(Rect(0, 0, 1, 1), 0.3)
        assert grid.ncols == 4
        assert grid.nrows == 4

    def test_degenerate_bounds_one_cell(self):
        grid = UniformGrid(Rect(2, 2, 2, 2), 0.5)
        assert grid.ncols == 1 and grid.nrows == 1

    def test_zero_cell_size_raises(self):
        with pytest.raises(ValueError):
            UniformGrid(Rect(0, 0, 1, 1), 0.0)


class TestAddressing:
    def test_cell_of_interior(self, grid_5x4):
        assert grid_5x4.cell_of(2.5, 1.5) == (2, 1)

    def test_cell_of_origin(self, grid_5x4):
        assert grid_5x4.cell_of(0.0, 0.0) == (0, 0)

    def test_upper_border_clamped(self, grid_5x4):
        assert grid_5x4.cell_of(5.0, 4.0) == (4, 3)

    def test_outside_clamped(self, grid_5x4):
        assert grid_5x4.cell_of(-1.0, 10.0) == (0, 3)

    def test_cell_id_row_wise_bottom_up(self, grid_5x4):
        # Figure 2: ids assigned row-wise from bottom to top.
        assert grid_5x4.cell_id((0, 0)) == 0
        assert grid_5x4.cell_id((4, 0)) == 4
        assert grid_5x4.cell_id((0, 1)) == 5
        assert grid_5x4.cell_id((4, 3)) == 19

    @given(st.integers(0, 19))
    def test_cell_id_roundtrip(self, cid):
        grid = UniformGrid(Rect(0, 0, 5, 4), 1.0)
        assert grid.cell_id(grid.cell_coord(cid)) == cid

    def test_cell_rect_contains_cell_points(self, grid_5x4):
        rect = grid_5x4.cell_rect((2, 1))
        assert rect == Rect(2.0, 1.0, 3.0, 2.0)

    @given(
        st.floats(0, 5, allow_nan=False, exclude_max=True),
        st.floats(0, 4, allow_nan=False, exclude_max=True),
    )
    def test_point_inside_its_cell_rect(self, x, y):
        grid = UniformGrid(Rect(0, 0, 5, 4), 1.0)
        assert grid.cell_rect(grid.cell_of(x, y)).contains_point(x, y)


class TestNeighbourhoods:
    def test_interior_has_8_neighbours(self, grid_5x4):
        assert len(list(grid_5x4.neighbours((2, 1)))) == 8

    def test_corner_has_3_neighbours(self, grid_5x4):
        assert len(list(grid_5x4.neighbours((0, 0)))) == 3

    def test_relevant_cells_includes_self(self, grid_5x4):
        cells = grid_5x4.relevant_cells((2, 1))
        assert (2, 1) in cells
        assert len(cells) == 9

    def test_lower_id_neighbours_all_lower(self, grid_5x4):
        cell = (2, 2)
        cid = grid_5x4.cell_id(cell)
        for other in grid_5x4.lower_id_neighbours(cell):
            assert grid_5x4.cell_id(other) < cid

    def test_neighbour_symmetry(self, grid_5x4):
        for cell in itertools.product(range(5), range(4)):
            for other in grid_5x4.neighbours(cell):
                assert cell in list(grid_5x4.neighbours(other))


def _covered_pairs(grid: UniformGrid):
    """All unordered cell pairs examined by a traversal scheme."""
    pairs = set()
    for col in range(grid.ncols):
        for row in range(grid.nrows):
            cell = (col, row)
            yield_key = lambda a, b: (a, b) if a <= b else (b, a)
            pairs.add(yield_key(cell, cell))
            for other in grid.snake_partners(cell):
                pairs.add(yield_key(cell, other))
    return pairs


def _expected_pairs(grid: UniformGrid):
    """Every cell with itself plus every adjacent unordered pair."""
    pairs = set()
    for col in range(grid.ncols):
        for row in range(grid.nrows):
            cell = (col, row)
            pairs.add((cell, cell))
            for other in grid.neighbours(cell):
                pairs.add((cell, other) if cell <= other else (other, cell))
    return pairs


class TestSnakeTraversal:
    @pytest.mark.parametrize("ncols,nrows", [(1, 1), (1, 5), (5, 1), (4, 4), (5, 4), (7, 3)])
    def test_snake_covers_every_adjacent_pair_exactly_once(self, ncols, nrows):
        grid = UniformGrid(Rect(0, 0, ncols, nrows), 1.0)
        # Exactly once: collect with multiplicity.
        seen = []
        for col in range(ncols):
            for row in range(nrows):
                cell = (col, row)
                seen.append((cell, cell))
                for other in grid.snake_partners(cell):
                    seen.append((cell, other) if cell <= other else (other, cell))
        assert len(seen) == len(set(seen)), "a cell pair was scheduled twice"
        assert set(seen) == _expected_pairs(grid)

    def test_bottom_row_is_paper_odd(self):
        grid = UniformGrid(Rect(0, 0, 5, 4), 1.0)
        # Paper-odd rows reach up; the bottom row must therefore include
        # upper neighbours among its partners.
        partners = set(grid.snake_partners((2, 0)))
        assert (2, 1) in partners
        # Paper-even rows only reach left.
        partners_even = set(grid.snake_partners((2, 1)))
        assert partners_even == {(1, 1)}

    def test_odd_row_excludes_right_neighbour(self):
        grid = UniformGrid(Rect(0, 0, 5, 4), 1.0)
        assert (3, 0) not in set(grid.snake_partners((2, 0)))
