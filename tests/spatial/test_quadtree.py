"""Tests for the quadtree partitioner."""

import numpy as np
import pytest

from repro.spatial.geometry import Rect
from repro.spatial.quadtree import QuadTree


def random_points(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        (float(x), float(y), i)
        for i, (x, y) in enumerate(rng.uniform(0, 1, (n, 2)))
    ]


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            QuadTree(Rect(0, 0, 1, 1), capacity=0)
        with pytest.raises(ValueError):
            QuadTree(Rect(0, 0, 1, 1), max_depth=0)

    def test_outside_point_rejected(self):
        qt = QuadTree(Rect(0, 0, 1, 1))
        with pytest.raises(ValueError):
            qt.insert(2.0, 0.5, "x")

    def test_len_tracks_inserts(self):
        qt = QuadTree(Rect(0, 0, 1, 1), capacity=4)
        for x, y, i in random_points(25):
            qt.insert(x, y, i)
        assert len(qt) == 25


class TestQueries:
    def test_range_query_matches_scan(self):
        pts = random_points(300, seed=1)
        qt = QuadTree(Rect(0, 0, 1, 1), capacity=8)
        for x, y, i in pts:
            qt.insert(x, y, i)
        for q in (Rect(0, 0, 0.3, 0.3), Rect(0.4, 0.1, 0.9, 0.8), Rect(0, 0, 1, 1)):
            expected = {i for x, y, i in pts if q.contains_point(x, y)}
            assert {i for _, _, i in qt.range_query(q)} == expected

    def test_empty_tree_query(self):
        qt = QuadTree(Rect(0, 0, 1, 1))
        assert qt.range_query(Rect(0, 0, 1, 1)) == []


class TestPartitions:
    def test_splits_beyond_capacity(self):
        qt = QuadTree(Rect(0, 0, 1, 1), capacity=4)
        for x, y, i in random_points(100, seed=2):
            qt.insert(x, y, i)
        leaves = qt.leaves()
        assert len(leaves) > 1
        assert sum(len(l.entries) for l in leaves) == 100
        assert [l.leaf_id for l in leaves] == list(range(len(leaves)))

    def test_max_depth_absorbs_duplicates(self):
        qt = QuadTree(Rect(0, 0, 1, 1), capacity=2, max_depth=3)
        for i in range(40):
            qt.insert(0.5001, 0.5001, i)
        assert len(qt) == 40
        assert sum(len(l.entries) for l in qt.leaves()) == 40

    def test_leaf_mbr_tight(self):
        qt = QuadTree(Rect(0, 0, 1, 1), capacity=16)
        pts = random_points(60, seed=3)
        for x, y, i in pts:
            qt.insert(x, y, i)
        for leaf in qt.leaves():
            for x, y, _ in leaf.entries:
                assert leaf.mbr.contains_point(x, y)
