"""Tests for the plane-sweep and R-tree spatial joins against oracles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import Rect
from repro.spatial.rtree import RTree
from repro.spatial.spatial_join import (
    rtree_leaf_join,
    rtree_relevant_leaf_pairs,
    sweep_point_pairs,
    sweep_rect_pairs,
)

coords = st.floats(0, 1, allow_nan=False)


def make_rect(a, b, c, d):
    return Rect(min(a, b), min(c, d), max(a, b), max(c, d))


rect_lists = st.lists(st.builds(make_rect, coords, coords, coords, coords), max_size=40)
point_lists = st.lists(st.tuples(coords, coords), max_size=50)


class TestSweepRectPairs:
    @given(rect_lists, rect_lists)
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce(self, rects_a, rects_b):
        expected = {
            (i, j)
            for i in range(len(rects_a))
            for j in range(len(rects_b))
            if rects_a[i].intersects(rects_b[j])
        }
        assert set(sweep_rect_pairs(rects_a, rects_b)) == expected

    def test_empty_inputs(self):
        assert list(sweep_rect_pairs([], [Rect(0, 0, 1, 1)])) == []
        assert list(sweep_rect_pairs([Rect(0, 0, 1, 1)], [])) == []

    def test_no_duplicate_pairs(self):
        rects = [Rect(0, 0, 1, 1)] * 5
        out = list(sweep_rect_pairs(rects, rects))
        assert len(out) == len(set(out)) == 25


class TestSweepPointPairs:
    @given(point_lists, point_lists, st.floats(0.01, 0.5, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce(self, pts_a, pts_b, eps):
        expected = {
            (i, j)
            for i, (ax, ay) in enumerate(pts_a)
            for j, (bx, by) in enumerate(pts_b)
            if (ax - bx) ** 2 + (ay - by) ** 2 <= eps * eps
        }
        assert set(sweep_point_pairs(pts_a, pts_b, eps)) == expected


def _build_tree(n: int, seed: int, fanout: int = 8) -> RTree:
    rng = np.random.default_rng(seed)
    pts = [
        (float(x), float(y), i)
        for i, (x, y) in enumerate(rng.uniform(0, 1, (n, 2)))
    ]
    return RTree.bulk_load(pts, fanout=fanout)


class TestRTreeLeafJoin:
    @pytest.mark.parametrize("eps", [0.0, 0.02, 0.1, 0.5])
    def test_self_join_matches_bruteforce(self, eps):
        tree = _build_tree(300, seed=1)
        leaves = tree.leaves()
        expected = {
            (a.leaf_id, b.leaf_id)
            for a in leaves
            for b in leaves
            if a.leaf_id <= b.leaf_id
            and a.mbr.extend(eps).intersects(b.mbr.extend(eps))
        }
        assert rtree_relevant_leaf_pairs(tree, eps) == expected

    def test_cross_tree_join_matches_bruteforce(self):
        tree_a = _build_tree(150, seed=2)
        tree_b = _build_tree(180, seed=3)
        eps = 0.03
        expected = {
            (a.leaf_id, b.leaf_id)
            for a in tree_a.leaves()
            for b in tree_b.leaves()
            if a.mbr.extend(eps).intersects(b.mbr.extend(eps))
        }
        got = {(a.leaf_id, b.leaf_id) for a, b in rtree_leaf_join(tree_a, tree_b, eps)}
        assert got == expected

    def test_unequal_heights(self):
        shallow = _build_tree(10, seed=4, fanout=16)
        deep = _build_tree(800, seed=5, fanout=4)
        eps = 0.01
        expected = {
            (a.leaf_id, b.leaf_id)
            for a in shallow.leaves()
            for b in deep.leaves()
            if a.mbr.extend(eps).intersects(b.mbr.extend(eps))
        }
        got = {(a.leaf_id, b.leaf_id) for a, b in rtree_leaf_join(shallow, deep, eps)}
        assert got == expected

    def test_empty_tree(self):
        empty = RTree.bulk_load([], fanout=8)
        full = _build_tree(50, seed=6)
        assert list(rtree_leaf_join(empty, full, 0.1)) == []

    def test_self_pairs_included(self):
        tree = _build_tree(100, seed=7)
        pairs = rtree_relevant_leaf_pairs(tree, 0.0)
        for leaf in tree.leaves():
            assert (leaf.leaf_id, leaf.leaf_id) in pairs
