"""Spatial keyword queries against brute-force oracles."""

import math

import pytest

from repro.spatial.geometry import Rect
from repro.stindex.queries import SpatialKeywordIndex
from tests.helpers import build_random_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_random_dataset(17, n_users=10, max_objects=10, vocab=15)


@pytest.fixture(scope="module")
def index(dataset):
    return SpatialKeywordIndex(dataset, fanout=8)


def keyword_set(dataset, obj):
    return set(dataset.vocab.decode(obj.doc))


class TestBooleanRange:
    def test_and_semantics_match_scan(self, dataset, index):
        window = Rect(0.2, 0.2, 0.8, 0.8)
        keywords = {"k1", "k2"}
        expected = {
            o.oid
            for o in dataset.objects
            if window.contains_point(o.x, o.y)
            and keywords <= keyword_set(dataset, o)
        }
        got = {o.oid for o in index.boolean_range(window, keywords)}
        assert got == expected

    def test_or_semantics_match_scan(self, dataset, index):
        window = Rect(0.0, 0.0, 1.0, 1.0)
        keywords = {"k3", "k7"}
        expected = {
            o.oid
            for o in dataset.objects
            if keywords & keyword_set(dataset, o)
        }
        got = {o.oid for o in index.boolean_range(window, keywords, match_all=False)}
        assert got == expected

    def test_unknown_keyword_and(self, index):
        assert index.boolean_range(Rect(0, 0, 1, 1), {"k1", "nope"}) == []

    def test_unknown_keyword_or(self, dataset, index):
        got = index.boolean_range(Rect(0, 0, 1, 1), {"k1", "nope"}, match_all=False)
        expected = index.boolean_range(Rect(0, 0, 1, 1), {"k1"}, match_all=False)
        assert {o.oid for o in got} == {o.oid for o in expected}

    def test_empty_keywords(self, index):
        assert index.boolean_range(Rect(0, 0, 1, 1), set()) == []


class TestKnnKeyword:
    def test_matches_scan(self, dataset, index):
        qx, qy = 0.5, 0.5
        keywords = {"k1"}
        candidates = [
            (math.hypot(o.x - qx, o.y - qy), o.oid)
            for o in dataset.objects
            if "k1" in keyword_set(dataset, o)
        ]
        candidates.sort()
        got = index.knn_keyword(qx, qy, keywords, k=5)
        # Distance multiset must match the 5 smallest distances.
        assert [round(d, 12) for _, d in got] == [
            round(d, 12) for d, _ in candidates[:5]
        ]

    def test_results_sorted_by_distance(self, index):
        got = index.knn_keyword(0.1, 0.9, {"k2"}, k=8)
        dists = [d for _, d in got]
        assert dists == sorted(dists)

    def test_all_results_satisfy_predicate(self, dataset, index):
        got = index.knn_keyword(0.5, 0.5, {"k1", "k2"}, k=4, match_all=True)
        for obj, _ in got:
            assert {"k1", "k2"} <= keyword_set(dataset, obj)

    def test_fewer_matches_than_k(self, dataset, index):
        total = sum(1 for o in dataset.objects if "k1" in keyword_set(dataset, o))
        got = index.knn_keyword(0.5, 0.5, {"k1"}, k=total + 50)
        assert len(got) == total

    def test_unknown_keyword(self, index):
        assert index.knn_keyword(0.5, 0.5, {"nope"}, k=3) == []

    def test_invalid_k(self, index):
        with pytest.raises(ValueError):
            index.knn_keyword(0.5, 0.5, {"k1"}, k=0)


class TestTopkRelevance:
    def brute_force(self, dataset, index, qx, qy, keywords, k, alpha):
        tokens = frozenset(dataset.vocab.encode_partial(keywords))
        scored = []
        for o in dataset.objects:
            d = math.hypot(o.x - qx, o.y - qy) / index.diameter
            inter = len(tokens & o.doc_set)
            union = len(tokens) + len(o.doc_set) - inter
            tau = inter / union if union else 1.0
            scored.append((alpha * d + (1 - alpha) * (1 - tau), o.oid))
        scored.sort()
        return scored[:k]

    @pytest.mark.parametrize("alpha", [0.0, 0.3, 0.5, 1.0])
    def test_matches_scan(self, dataset, index, alpha):
        got = index.topk_relevance(0.4, 0.6, {"k1", "k4"}, k=6, alpha=alpha)
        expected = self.brute_force(dataset, index, 0.4, 0.6, {"k1", "k4"}, 6, alpha)
        assert [round(c, 12) for _, c in got] == [
            round(c, 12) for c, _ in expected
        ]

    def test_costs_sorted(self, index):
        got = index.topk_relevance(0.5, 0.5, {"k1"}, k=10)
        costs = [c for _, c in got]
        assert costs == sorted(costs)

    def test_validation(self, index):
        with pytest.raises(ValueError):
            index.topk_relevance(0.5, 0.5, {"k1"}, k=0)
        with pytest.raises(ValueError):
            index.topk_relevance(0.5, 0.5, {"k1"}, k=3, alpha=1.5)

    def test_alpha_one_is_pure_distance(self, dataset, index):
        got = index.topk_relevance(0.5, 0.5, {"k1"}, k=3, alpha=1.0)
        dists = sorted(
            math.hypot(o.x - 0.5, o.y - 0.5) / index.diameter
            for o in dataset.objects
        )
        assert [round(c, 12) for _, c in got] == [round(d, 12) for d in dists[:3]]


class TestFuzz:
    """Random datasets and windows against brute force."""

    import pytest as _pytest

    @_pytest.mark.parametrize("seed", range(6))
    def test_boolean_range_fuzz(self, seed):
        import numpy as np

        ds = build_random_dataset(seed + 100, n_users=8, vocab=12)
        idx = SpatialKeywordIndex(ds, fanout=8)
        rng = np.random.default_rng(seed)
        for _ in range(5):
            a, b, c, d = rng.uniform(0, 1, 4)
            window = Rect(min(a, b), min(c, d), max(a, b), max(c, d))
            kw = {f"k{int(t)}" for t in rng.integers(0, 12, 2)}
            expected = {
                o.oid
                for o in ds.objects
                if window.contains_point(o.x, o.y)
                and kw <= set(map(str, ds.vocab.decode(o.doc)))
            }
            got = {o.oid for o in idx.boolean_range(window, kw)}
            assert got == expected

    @_pytest.mark.parametrize("seed", range(6))
    def test_knn_fuzz(self, seed):
        import math

        import numpy as np

        ds = build_random_dataset(seed + 200, n_users=8, vocab=10)
        idx = SpatialKeywordIndex(ds, fanout=8)
        rng = np.random.default_rng(seed)
        qx, qy = rng.uniform(0, 1, 2)
        kw = f"k{int(rng.integers(0, 10))}"
        expected = sorted(
            math.hypot(o.x - qx, o.y - qy)
            for o in ds.objects
            if kw in set(map(str, ds.vocab.decode(o.doc)))
        )[:4]
        got = [d for _, d in idx.knn_keyword(float(qx), float(qy), {kw}, k=4)]
        assert [round(v, 12) for v in got] == [round(v, 12) for v in expected]
