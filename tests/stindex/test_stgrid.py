"""The spatio-textual grid index (Figure 3)."""

import pytest

from repro.stindex.stgrid import STGridIndex
from tests.helpers import build_random_dataset


@pytest.fixture
def dataset():
    return build_random_dataset(3, n_users=6)


@pytest.fixture
def index(dataset):
    return STGridIndex.build(dataset, eps_loc=0.2)


class TestConstruction:
    def test_every_object_indexed(self, dataset, index):
        total = sum(
            index.cell_user_count(cell, user)
            for user in dataset.users
            for cell in index.user_cells(user)
        )
        assert total == dataset.num_objects

    def test_user_cells_sorted_by_id(self, dataset, index):
        for user in dataset.users:
            cells = index.user_cells(user)
            ids = [index.grid.cell_id(c) for c in cells]
            assert ids == sorted(ids)

    def test_unknown_user_empty(self, index):
        assert index.user_cells("ghost") == []
        assert index.cell_objects((0, 0), "ghost") == []

    def test_cell_objects_belong_to_cell_and_user(self, dataset, index):
        for user in dataset.users:
            for cell in index.user_cells(user):
                for obj in index.cell_objects(cell, user):
                    assert obj.user == user
                    assert index.grid.cell_of(obj.x, obj.y) == cell

    def test_incremental_matches_bulk(self, dataset):
        bulk = STGridIndex.build(dataset, eps_loc=0.2)
        incr = STGridIndex(dataset.bounds, 0.2)
        for user in dataset.users:
            incr.add_user(user, dataset.user_objects(user))
        for user in dataset.users:
            assert incr.user_cells(user) == bulk.user_cells(user)

    def test_user_subset_build(self, dataset):
        index = STGridIndex.build(dataset, 0.2, users=dataset.users[:2])
        assert index.user_cells(dataset.users[2]) == []

    def test_add_user_twice_merges_cells(self, dataset):
        index = STGridIndex(dataset.bounds, 0.2)
        user = dataset.users[0]
        objs = dataset.user_objects(user)
        index.add_user(user, objs[:1])
        index.add_user(user, objs[1:])
        counts = sum(
            index.cell_user_count(c, user) for c in index.user_cells(user)
        )
        assert counts == len(objs)


class TestTokenLists:
    def test_token_users_complete(self, dataset, index):
        """Every (cell, token, user) occurrence must be probe-able."""
        for obj in dataset.objects:
            cell = index.grid.cell_of(obj.x, obj.y)
            for token in obj.doc:
                assert obj.user in index.token_users(cell, token)

    def test_token_users_no_false_entries(self, dataset, index):
        for user in dataset.users:
            for cell in index.user_cells(user):
                tokens = index.user_cell_tokens(user, cell)
                for token in tokens:
                    assert user in index.token_users(cell, token)

    def test_missing_token_empty(self, index):
        assert index.token_users((0, 0), 999999) == set()

    def test_without_tokens_raises(self, dataset):
        index = STGridIndex.build(dataset, 0.2, with_tokens=False)
        with pytest.raises(RuntimeError):
            index.token_users((0, 0), 1)

    def test_user_cell_tokens_union_of_docs(self, dataset, index):
        user = dataset.users[0]
        for cell in index.user_cells(user):
            expected = set()
            for obj in index.cell_objects(cell, user):
                expected.update(obj.doc)
            assert index.user_cell_tokens(user, cell) == expected


class TestNeighbourhoods:
    def test_relevant_cells_delegates_to_grid(self, index):
        cell = (1, 1)
        assert set(index.relevant_cells(cell)) == set(
            index.grid.relevant_cells(cell)
        )

    def test_occupied_relevant_cells_subset(self, dataset, index):
        user = dataset.users[0]
        for cell in index.user_cells(user):
            occupied = index.occupied_relevant_cells(cell)
            assert set(occupied) <= set(index.relevant_cells(cell))
            assert cell in occupied

    def test_cell_users(self, dataset, index):
        user = dataset.users[0]
        cell = index.user_cells(user)[0]
        assert user in index.cell_users(cell)
        assert index.cell_users((999, 999)) == []
