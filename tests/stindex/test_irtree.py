"""IR-tree: identical answers to the plain index, fewer node expansions."""

import pytest

from repro.stindex.irtree import IRTree
from repro.stindex.queries import SpatialKeywordIndex
from tests.helpers import build_random_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_random_dataset(23, n_users=12, max_objects=12, vocab=20)


@pytest.fixture(scope="module")
def irtree(dataset):
    return IRTree(dataset, fanout=8)


@pytest.fixture(scope="module")
def plain(dataset):
    return SpatialKeywordIndex(dataset, fanout=8)


class TestAnnotations:
    def test_root_summary_is_full_vocabulary(self, dataset, irtree):
        all_tokens = set()
        for obj in dataset.objects:
            all_tokens.update(obj.doc)
        assert irtree.node_tokens(irtree.tree.root) == frozenset(all_tokens)

    def test_child_summaries_subset_of_parent(self, irtree):
        stack = [irtree.tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            parent_tokens = irtree.node_tokens(node)
            for child in node.children:
                assert irtree.node_tokens(child) <= parent_tokens
                stack.append(child)

    def test_leaf_summaries_cover_entries(self, irtree):
        for leaf in irtree.tree.leaves():
            tokens = irtree.node_tokens(leaf)
            for _, _, obj in leaf.entries:
                assert set(obj.doc) <= tokens


class TestQueryEquivalence:
    @pytest.mark.parametrize("alpha", [0.0, 0.3, 0.7, 1.0])
    @pytest.mark.parametrize("keywords", [{"k1"}, {"k1", "k5"}, {"k2", "k9", "k13"}])
    def test_same_costs_as_plain_index(self, irtree, plain, alpha, keywords):
        got = irtree.topk_relevance(0.4, 0.6, keywords, k=7, alpha=alpha)
        expected = plain.topk_relevance(0.4, 0.6, keywords, k=7, alpha=alpha)
        assert [round(c, 12) for _, c in got] == [round(c, 12) for _, c in expected]

    def test_unknown_keywords(self, irtree, plain):
        got = irtree.topk_relevance(0.5, 0.5, {"nope"}, k=3, alpha=0.5)
        expected = plain.topk_relevance(0.5, 0.5, {"nope"}, k=3, alpha=0.5)
        assert [round(c, 12) for _, c in got] == [round(c, 12) for _, c in expected]

    def test_validation(self, irtree):
        with pytest.raises(ValueError):
            irtree.topk_relevance(0.5, 0.5, {"k1"}, k=0)
        with pytest.raises(ValueError):
            irtree.topk_relevance(0.5, 0.5, {"k1"}, k=3, alpha=-0.1)


class TestPruningAdvantage:
    def test_fewer_expansions_on_selective_query(self, dataset, irtree, plain):
        """A rare-token, text-heavy query must expand no more IR-tree nodes
        than the summary-less best-first search, and typically far fewer."""
        df = {}
        for obj in dataset.objects:
            for t in dataset.vocab.decode(obj.doc):
                df[t] = df.get(t, 0) + 1
        rare = min(df, key=df.get)

        got = irtree.topk_relevance(0.5, 0.5, {rare}, k=3, alpha=0.1)
        expected = plain.topk_relevance(0.5, 0.5, {rare}, k=3, alpha=0.1)
        assert [round(c, 12) for _, c in got] == [round(c, 12) for _, c in expected]
        assert 1 <= irtree.expansions <= plain.expansions
