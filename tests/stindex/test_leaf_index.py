"""The R-tree leaf spatio-textual index of S-PPJ-D."""

import pytest

from repro.stindex.leaf_index import STLeafIndex
from tests.helpers import build_random_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_random_dataset(4, n_users=6)


@pytest.fixture(params=["rtree", "quadtree"], scope="module")
def index(request, dataset):
    return STLeafIndex(
        dataset, eps_loc=0.1, fanout=8, partitioner=request.param
    )


class TestConstruction:
    def test_every_object_in_exactly_one_leaf(self, dataset, index):
        total = 0
        for leaf_id in range(index.num_leaves):
            for user in index.leaf_users(leaf_id):
                total += index.leaf_user_count(leaf_id, user)
        assert total == dataset.num_objects

    def test_user_leaves_sorted_and_consistent(self, dataset, index):
        for user in dataset.users:
            leaves = index.user_leaves(user)
            assert leaves == sorted(leaves)
            for leaf_id in leaves:
                assert index.leaf_user_count(leaf_id, user) > 0

    def test_unknown_user(self, index):
        assert index.user_leaves("ghost") == []

    def test_extended_rects_cover_leaf(self, index):
        for leaf_id, leaf in enumerate(index.tree.leaves()):
            assert index.extended[leaf_id].contains_rect(leaf.mbr)

    def test_fanout_respected(self, dataset):
        index = STLeafIndex(dataset, eps_loc=0.1, fanout=4)
        for leaf in index.tree.leaves():
            assert len(leaf.entries) <= 4

    def test_unknown_partitioner(self, dataset):
        with pytest.raises(ValueError):
            STLeafIndex(dataset, eps_loc=0.1, partitioner="kd-tree")


class TestTokenLists:
    def test_token_users_complete(self, dataset, index):
        leaf_of = {}
        for leaf in index.tree.leaves():
            for _, _, obj in leaf.entries:
                leaf_of[obj.oid] = leaf.leaf_id
        for obj in dataset.objects:
            lid = leaf_of[obj.oid]
            for token in obj.doc:
                assert obj.user in index.token_users(lid, token)

    def test_user_leaf_tokens(self, dataset, index):
        user = dataset.users[0]
        for leaf_id in index.user_leaves(user):
            expected = set()
            for obj in index.leaf_objects(leaf_id, user):
                expected.update(obj.doc)
            assert index.user_leaf_tokens(user, leaf_id) == expected


class TestRelevance:
    def test_relevance_symmetric_and_reflexive(self, index):
        for leaf_id in range(index.num_leaves):
            rel = index.relevant_leaves(leaf_id)
            assert leaf_id in rel
            for other in rel:
                assert leaf_id in index.relevant_leaves(other)

    def test_relevance_matches_extended_intersection(self, index):
        for a in range(index.num_leaves):
            for b in range(index.num_leaves):
                expected = index.extended[a].intersects(index.extended[b])
                assert (b in index.relevant_leaves(a)) == expected

    def test_intersection_area(self, index):
        for leaf_id in range(index.num_leaves):
            for other in index.relevant_leaves(leaf_id):
                assert index.intersection_area(leaf_id, other) is not None
