"""DatasetSnapshot: the spawn transport's capture/restore round-trip."""

import pickle

import pytest

from repro import STDataset, stps_join
from repro.stindex import DatasetSnapshot
from tests.helpers import build_clustered_dataset, build_random_dataset


class TestRoundTrip:
    def test_restore_reproduces_dataset_exactly(self):
        ds = build_clustered_dataset(3, n_users=10)
        restored = DatasetSnapshot.capture(ds).restore()
        assert restored.users == ds.users
        assert restored.num_objects == ds.num_objects
        for orig, back in zip(ds.objects, restored.objects):
            assert (back.oid, back.user, back.x, back.y, back.doc) == (
                orig.oid,
                orig.user,
                orig.x,
                orig.y,
                orig.doc,
            )
            assert back.doc_set == orig.doc_set

    def test_vocabulary_preserved_including_df_order(self):
        ds = build_random_dataset(5, n_users=8)
        restored = DatasetSnapshot.capture(ds).restore()
        assert restored.vocab._id_to_token == ds.vocab._id_to_token
        assert restored.vocab._df == ds.vocab._df
        assert restored.vocab._token_to_id == ds.vocab._token_to_id

    def test_join_results_identical_after_restore(self):
        ds = build_clustered_dataset(1, n_users=10)
        restored = DatasetSnapshot.capture(ds).restore()
        for algorithm in ("s-ppj-b", "s-ppj-f", "s-ppj-d"):
            assert stps_join(
                restored, 0.05, 0.3, 0.2, algorithm=algorithm
            ) == stps_join(ds, 0.05, 0.3, 0.2, algorithm=algorithm)

    def test_pickle_round_trip(self):
        ds = build_clustered_dataset(2, n_users=6)
        snapshot = DatasetSnapshot.capture(ds)
        clone = pickle.loads(pickle.dumps(snapshot))
        restored = clone.restore()
        assert restored.users == ds.users
        assert [o.doc for o in restored.objects] == [o.doc for o in ds.objects]

    def test_pickle_smaller_than_dataset_pickle(self):
        # The point of the snapshot: a compact transport format.
        ds = build_clustered_dataset(4, n_users=12)
        snapshot_size = len(pickle.dumps(DatasetSnapshot.capture(ds)))
        dataset_size = len(pickle.dumps(ds))
        assert snapshot_size < dataset_size

    def test_empty_dataset(self):
        ds = STDataset.from_records([])
        snapshot = DatasetSnapshot.capture(ds)
        assert snapshot.num_objects == 0
        restored = snapshot.restore()
        assert restored.num_users == 0
        assert restored.num_objects == 0

    def test_mixed_user_id_types(self):
        ds = STDataset.from_records(
            [
                (1, 0.1, 0.1, {"a"}),
                ("x", 0.2, 0.2, {"a", "b"}),
                (2, 0.3, 0.3, {"b"}),
            ]
        )
        restored = DatasetSnapshot.capture(ds).restore()
        assert restored.users == ds.users
