"""Dataset builders shared across test modules."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import STDataset


def build_random_dataset(
    seed: int,
    n_users: int = 10,
    max_objects: int = 8,
    vocab: int = 30,
    max_tokens: int = 5,
    extent: float = 1.0,
) -> STDataset:
    """A small random dataset; deterministic for a given argument tuple.

    Object locations are uniform over ``[0, extent]^2`` and keywords are
    uniform over a small vocabulary, which makes both the spatial and the
    textual predicates selective-but-not-degenerate for the thresholds the
    tests use.
    """
    rng = np.random.default_rng(seed)
    records = []
    for user in range(n_users):
        n_objects = int(rng.integers(1, max_objects + 1))
        for _ in range(n_objects):
            x, y = rng.uniform(0.0, extent, 2)
            n_tokens = int(rng.integers(1, max_tokens + 1))
            keywords = {f"k{int(t)}" for t in rng.integers(0, vocab, n_tokens)}
            records.append((user, float(x), float(y), keywords))
    return STDataset.from_records(records)


def build_clustered_dataset(
    seed: int,
    n_users: int = 8,
    n_clusters: int = 3,
    objects_per_user: int = 6,
    spread: float = 0.01,
) -> STDataset:
    """A dataset with spatial clusters and cluster-specific vocabularies.

    Users sharing clusters produce genuinely similar point sets, so
    threshold joins return non-trivial results.
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 1.0, (n_clusters, 2))
    records = []
    for user in range(n_users):
        home = int(rng.integers(0, n_clusters))
        for _ in range(objects_per_user):
            cluster = home if rng.random() < 0.8 else int(rng.integers(0, n_clusters))
            x = float(centers[cluster, 0] + rng.normal(0.0, spread))
            y = float(centers[cluster, 1] + rng.normal(0.0, spread))
            keywords = {
                f"c{cluster}_{int(t)}"
                for t in rng.integers(0, 6, int(rng.integers(1, 4)))
            }
            records.append((user, x, y, keywords))
    return STDataset.from_records(records)


@dataclass(frozen=True)
class DifferentialConfig:
    """One seeded dataset shape for the differential test harness.

    The knobs cover the axes along which the join algorithms' pruning
    differs: user count and set-size spread (Lemma 1/2 bounds), token
    skew (inverted-list selectivity), spatial clustering (grid/leaf
    occupancy), and degenerate extremes (empty docs, singleton sets).
    """

    seed: int
    n_users: int = 10
    min_objects: int = 1
    max_objects: int = 8
    vocab: int = 30
    max_tokens: int = 5
    token_skew: float = 0.0  # 0 = uniform; >0 = Zipf-like head concentration
    cluster_fraction: float = 0.0  # share of objects snapped near cluster centers
    n_clusters: int = 3
    spread: float = 0.02
    extent: float = 1.0
    empty_doc_fraction: float = 0.0


def build_differential_dataset(config: DifferentialConfig) -> STDataset:
    """Build the dataset a :class:`DifferentialConfig` describes.

    Deterministic for a given config.  Token ids are drawn from a
    truncated geometric-like distribution when ``token_skew > 0``, which
    concentrates mass on a few head tokens (long inverted lists) while
    keeping a heavy tail of rare tokens — the regime where candidate
    generation and the sigma_bar bound behave most differently across
    algorithms.
    """
    rng = np.random.default_rng(config.seed)
    centers = rng.uniform(0.0, config.extent, (max(config.n_clusters, 1), 2))
    records = []
    for user in range(config.n_users):
        n_objects = int(rng.integers(config.min_objects, config.max_objects + 1))
        home = int(rng.integers(0, max(config.n_clusters, 1)))
        for _ in range(n_objects):
            if rng.random() < config.cluster_fraction:
                x = float(centers[home, 0] + rng.normal(0.0, config.spread))
                y = float(centers[home, 1] + rng.normal(0.0, config.spread))
            else:
                x, y = (float(v) for v in rng.uniform(0.0, config.extent, 2))
            if rng.random() < config.empty_doc_fraction:
                keywords = set()
            else:
                n_tokens = int(rng.integers(1, config.max_tokens + 1))
                if config.token_skew > 0.0:
                    # Skewed draw: exponential decay over the vocabulary.
                    raw = rng.exponential(1.0 / config.token_skew, n_tokens)
                    ids = np.minimum(raw.astype(int), config.vocab - 1)
                else:
                    ids = rng.integers(0, config.vocab, n_tokens)
                keywords = {f"k{int(t)}" for t in ids}
            records.append((user, x, y, keywords))
    return STDataset.from_records(records)
