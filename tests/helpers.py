"""Dataset builders shared across test modules."""

from __future__ import annotations

import numpy as np

from repro import STDataset


def build_random_dataset(
    seed: int,
    n_users: int = 10,
    max_objects: int = 8,
    vocab: int = 30,
    max_tokens: int = 5,
    extent: float = 1.0,
) -> STDataset:
    """A small random dataset; deterministic for a given argument tuple.

    Object locations are uniform over ``[0, extent]^2`` and keywords are
    uniform over a small vocabulary, which makes both the spatial and the
    textual predicates selective-but-not-degenerate for the thresholds the
    tests use.
    """
    rng = np.random.default_rng(seed)
    records = []
    for user in range(n_users):
        n_objects = int(rng.integers(1, max_objects + 1))
        for _ in range(n_objects):
            x, y = rng.uniform(0.0, extent, 2)
            n_tokens = int(rng.integers(1, max_tokens + 1))
            keywords = {f"k{int(t)}" for t in rng.integers(0, vocab, n_tokens)}
            records.append((user, float(x), float(y), keywords))
    return STDataset.from_records(records)


def build_clustered_dataset(
    seed: int,
    n_users: int = 8,
    n_clusters: int = 3,
    objects_per_user: int = 6,
    spread: float = 0.01,
) -> STDataset:
    """A dataset with spatial clusters and cluster-specific vocabularies.

    Users sharing clusters produce genuinely similar point sets, so
    threshold joins return non-trivial results.
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 1.0, (n_clusters, 2))
    records = []
    for user in range(n_users):
        home = int(rng.integers(0, n_clusters))
        for _ in range(objects_per_user):
            cluster = home if rng.random() < 0.8 else int(rng.integers(0, n_clusters))
            x = float(centers[cluster, 0] + rng.normal(0.0, spread))
            y = float(centers[cluster, 1] + rng.normal(0.0, spread))
            keywords = {
                f"c{cluster}_{int(t)}"
                for t in rng.integers(0, 6, int(rng.integers(1, 4)))
            }
            records.append((user, x, y, keywords))
    return STDataset.from_records(records)
